//! Scenario configurations are the unit of experiment description; they
//! must survive serialization round-trips bit for bit so experiment specs
//! can be stored and replayed.

use alert_sim::{LocationPolicy, MobilityKind, RunBudget, ScenarioConfig};

fn roundtrip(cfg: &ScenarioConfig) -> ScenarioConfig {
    let json = serde_json::to_string(cfg).expect("serialize");
    serde_json::from_str(&json).expect("deserialize")
}

#[test]
fn default_scenario_roundtrips() {
    let cfg = ScenarioConfig::default();
    assert_eq!(roundtrip(&cfg), cfg);
}

#[test]
fn exotic_scenario_roundtrips() {
    let mut cfg = ScenarioConfig::default()
        .with_nodes(321)
        .with_speed(7.25)
        .with_duration(12.5)
        .with_location(LocationPolicy::SessionStart)
        .with_mobility(MobilityKind::Group {
            groups: 7,
            range: 123.0,
        });
    cfg.mac.loss_probability = 0.03;
    cfg.traffic.packet_bytes = 1024;
    cfg.pseudonym_lifetime_s = 12.0;
    assert_eq!(roundtrip(&cfg), cfg);
}

#[test]
fn budgeted_scenario_roundtrips() {
    let mut cfg = ScenarioConfig::default();
    cfg.budget = RunBudget {
        max_events: Some(1_000_000),
        max_sim_seconds: Some(300.0),
        max_wall_seconds: Some(60.0),
        max_events_per_instant: Some(10_000),
    };
    assert_eq!(roundtrip(&cfg), cfg);
}

#[test]
fn scenarios_without_a_budget_field_parse_as_unlimited() {
    // Back-compat: every scenario JSON written before guardrails existed
    // must keep parsing, with all budgets off.
    let mut json = serde_json::to_string(&ScenarioConfig::default()).unwrap();
    let mut start = json.find("\"budget\"").expect("budget serialized");
    // Strip the budget object (it is a flat object, so find its '}'),
    // plus whichever comma joins it to its neighbors.
    let mut end = start + json[start..].find('}').unwrap() + 1;
    if json.as_bytes().get(end) == Some(&b',') {
        end += 1;
    } else if start > 0 && json.as_bytes()[start - 1] == b',' {
        start -= 1;
    }
    json.replace_range(start..end, "");
    let cfg: ScenarioConfig = serde_json::from_str(&json).expect("budget-less scenario parses");
    assert!(cfg.budget.is_unlimited());
    assert_eq!(cfg, ScenarioConfig::default());
}

#[test]
fn serialized_form_is_human_editable() {
    let json = serde_json::to_string_pretty(&ScenarioConfig::default()).unwrap();
    for field in [
        "field_w",
        "nodes",
        "speed",
        "mobility",
        "range_m",
        "duration_s",
    ] {
        assert!(json.contains(field), "missing field {field} in\n{json}");
    }
}

//! Scenario configurations are the unit of experiment description; they
//! must survive serialization round-trips bit for bit so experiment specs
//! can be stored and replayed.

use alert_sim::{LocationPolicy, MobilityKind, ScenarioConfig};

fn roundtrip(cfg: &ScenarioConfig) -> ScenarioConfig {
    let json = serde_json::to_string(cfg).expect("serialize");
    serde_json::from_str(&json).expect("deserialize")
}

#[test]
fn default_scenario_roundtrips() {
    let cfg = ScenarioConfig::default();
    assert_eq!(roundtrip(&cfg), cfg);
}

#[test]
fn exotic_scenario_roundtrips() {
    let mut cfg = ScenarioConfig::default()
        .with_nodes(321)
        .with_speed(7.25)
        .with_duration(12.5)
        .with_location(LocationPolicy::SessionStart)
        .with_mobility(MobilityKind::Group {
            groups: 7,
            range: 123.0,
        });
    cfg.mac.loss_probability = 0.03;
    cfg.traffic.packet_bytes = 1024;
    cfg.pseudonym_lifetime_s = 12.0;
    assert_eq!(roundtrip(&cfg), cfg);
}

#[test]
fn serialized_form_is_human_editable() {
    let json = serde_json::to_string_pretty(&ScenarioConfig::default()).unwrap();
    for field in [
        "field_w",
        "nodes",
        "speed",
        "mobility",
        "range_m",
        "duration_s",
    ] {
        assert!(json.contains(field), "missing field {field} in\n{json}");
    }
}

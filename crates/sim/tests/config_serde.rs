//! Scenario configurations are the unit of experiment description; they
//! must survive serialization round-trips bit for bit so experiment specs
//! can be stored and replayed.

use alert_sim::{
    InsiderConfig, InsiderMode, LocationPolicy, MobilityKind, Placement, RunBudget, ScenarioConfig,
};

fn roundtrip(cfg: &ScenarioConfig) -> ScenarioConfig {
    let json = serde_json::to_string(cfg).expect("serialize");
    serde_json::from_str(&json).expect("deserialize")
}

#[test]
fn default_scenario_roundtrips() {
    let cfg = ScenarioConfig::default();
    assert_eq!(roundtrip(&cfg), cfg);
}

#[test]
fn exotic_scenario_roundtrips() {
    let mut cfg = ScenarioConfig::default()
        .with_nodes(321)
        .with_speed(7.25)
        .with_duration(12.5)
        .with_location(LocationPolicy::SessionStart)
        .with_mobility(MobilityKind::Group {
            groups: 7,
            range: 123.0,
        });
    cfg.mac.loss_probability = 0.03;
    cfg.traffic.packet_bytes = 1024;
    cfg.pseudonym_lifetime_s = 12.0;
    assert_eq!(roundtrip(&cfg), cfg);
}

#[test]
fn budgeted_scenario_roundtrips() {
    let mut cfg = ScenarioConfig::default();
    cfg.budget = RunBudget {
        max_events: Some(1_000_000),
        max_sim_seconds: Some(300.0),
        max_wall_seconds: Some(60.0),
        max_events_per_instant: Some(10_000),
    };
    assert_eq!(roundtrip(&cfg), cfg);
}

#[test]
fn scenarios_without_a_budget_field_parse_as_unlimited() {
    // Back-compat: every scenario JSON written before guardrails existed
    // must keep parsing, with all budgets off.
    let mut json = serde_json::to_string(&ScenarioConfig::default()).unwrap();
    let mut start = json.find("\"budget\"").expect("budget serialized");
    // Strip the budget object (it is a flat object, so find its '}'),
    // plus whichever comma joins it to its neighbors.
    let mut end = start + json[start..].find('}').unwrap() + 1;
    if json.as_bytes().get(end) == Some(&b',') {
        end += 1;
    } else if start > 0 && json.as_bytes()[start - 1] == b',' {
        start -= 1;
    }
    json.replace_range(start..end, "");
    let cfg: ScenarioConfig = serde_json::from_str(&json).expect("budget-less scenario parses");
    assert!(cfg.budget.is_unlimited());
    assert_eq!(cfg, ScenarioConfig::default());
}

#[test]
fn scenario_diversity_knobs_roundtrip() {
    let mut cfg = ScenarioConfig::default()
        .with_nodes(80)
        .with_duration(30.0)
        .with_mobility(MobilityKind::ManhattanGrid {
            h_streets: 5,
            v_streets: 3,
            turn_prob: 0.25,
            speed_classes: 3,
        });
    cfg.placement = Placement::SmallTeams {
        team_size: 4,
        spread_m: 35.0,
    };
    cfg.energy.initial_j = Some(750.0);
    cfg.energy.idle_watts = 0.05;
    cfg.energy.cluster_head_fraction = 0.12;
    cfg.energy.cluster_head_range_boost = 1.4;
    cfg.energy.relay_threshold_fraction = 0.1;
    cfg.insiders = InsiderConfig {
        fraction: 0.2,
        mode: InsiderMode::Drop,
    };
    cfg.validate().expect("a diverse scenario must validate");
    assert_eq!(roundtrip(&cfg), cfg);
}

#[test]
fn legacy_scenarios_parse_with_the_new_knobs_defaulted() {
    // Back-compat: scenario JSON written before placement, insiders, the
    // per-node energy meter, or Manhattan mobility existed must keep
    // parsing — and must mean exactly what it meant then: uniform
    // placement, no insiders, unlimited batteries.
    let mut v: serde_json::Value =
        serde_json::to_value(ScenarioConfig::default()).expect("serialize");
    let top = v.as_object_mut().expect("scenario is an object");
    assert!(top.remove("placement").is_some(), "placement serialized");
    assert!(top.remove("insiders").is_some(), "insiders serialized");
    // The energy block predates the meter but not the aggregate watts
    // fields, so strip only the meter-era keys inside it.
    let energy = top
        .get_mut("energy")
        .and_then(|e| e.as_object_mut())
        .expect("energy block");
    for field in [
        "initial_j",
        "idle_watts",
        "cluster_head_fraction",
        "cluster_head_range_boost",
        "relay_threshold_fraction",
    ] {
        assert!(energy.remove(field).is_some(), "{field} serialized");
    }
    let cfg: ScenarioConfig = serde_json::from_value(v).expect("legacy scenario parses");
    assert_eq!(cfg.placement, Placement::Uniform);
    assert!(!cfg.insiders.is_active());
    assert!(!cfg.energy.metered());
    assert_eq!(cfg, ScenarioConfig::default());
}

#[test]
fn serialized_form_is_human_editable() {
    let json = serde_json::to_string_pretty(&ScenarioConfig::default()).unwrap();
    for field in [
        "field_w",
        "nodes",
        "speed",
        "mobility",
        "range_m",
        "duration_s",
    ] {
        assert!(json.contains(field), "missing field {field} in\n{json}");
    }
}

//! End-to-end attack experiments: the adversary analyzers against live
//! ALERT and GPSR runs — the qualitative claims of Sections 3.1–3.3.

use alert_adversary::{
    correlate, mean_route_diversity, next_route_predictability, spatial_spread, IntersectionAttack,
    RecipientSet, TrafficLog,
};
use alert_core::{Alert, AlertConfig};
use alert_protocols::Gpsr;
use alert_sim::{NodeId, ScenarioConfig, SessionId, World};

fn scenario() -> ScenarioConfig {
    let mut cfg = ScenarioConfig::default()
        .with_nodes(200)
        .with_duration(60.0);
    cfg.traffic.pairs = 4;
    cfg
}

/// Routes (participant lists) of every delivered packet of session 0.
fn session_routes(m: &alert_sim::Metrics, session: u32) -> Vec<Vec<NodeId>> {
    m.packets
        .iter()
        .filter(|p| p.session == SessionId(session) && p.delivered_at.is_some())
        .map(|p| p.participants.clone())
        .collect()
}

#[test]
fn alert_routes_are_diverse_gpsr_routes_are_not() {
    // Section 3.1: "the resultant different routes for transmissions
    // between a given S-D pair make it difficult for an intruder to
    // observe a statistical pattern".
    let mut aw = World::new(scenario(), 21, |_, _| Alert::new(AlertConfig::default()));
    aw.run();
    let mut gw = World::new(scenario(), 21, |_, _| Gpsr::default());
    gw.run();
    let mut a_div = 0.0;
    let mut g_div = 0.0;
    for s in 0..4 {
        a_div += mean_route_diversity(&session_routes(aw.metrics(), s));
        g_div += mean_route_diversity(&session_routes(gw.metrics(), s));
    }
    a_div /= 4.0;
    g_div /= 4.0;
    assert!(
        a_div > g_div + 0.2,
        "ALERT diversity {a_div} not clearly above GPSR {g_div}"
    );
    assert!(a_div > 0.4, "ALERT routes too repetitive: {a_div}");

    // The §3.1 claim verbatim: "even if an adversary detects all the
    // nodes along a route once, this detection does not help it in
    // finding the routes for subsequent transmissions" — knowing route i
    // predicts a far smaller fraction of route i+1 under ALERT.
    let mut a_pred = 0.0;
    let mut g_pred = 0.0;
    for s in 0..4 {
        a_pred += next_route_predictability(&session_routes(aw.metrics(), s)) / 4.0;
        g_pred += next_route_predictability(&session_routes(gw.metrics(), s)) / 4.0;
    }
    assert!(
        a_pred < g_pred - 0.15,
        "ALERT next-route predictability {a_pred:.2} should be well below GPSR {g_pred:.2}"
    );
}

#[test]
fn alert_scatters_traffic_spatially() {
    let (log_a, cap_a) = TrafficLog::new();
    let mut aw = World::new(scenario(), 22, |_, _| Alert::new(AlertConfig::default()));
    aw.add_observer(Box::new(log_a));
    aw.run();
    let (log_g, cap_g) = TrafficLog::new();
    let mut gw = World::new(scenario(), 22, |_, _| Gpsr::default());
    gw.add_observer(Box::new(log_g));
    gw.run();

    // Spatial spread of the transmissions belonging to session 0 packets.
    let spread = |w: &World<Alert>, cap: &alert_adversary::CaptureHandle| {
        let ids: Vec<_> = w
            .metrics()
            .packets
            .iter()
            .enumerate()
            .filter(|(_, p)| p.session == SessionId(0))
            .map(|(i, _)| alert_sim::PacketId(i as u64))
            .collect();
        let c = cap.lock();
        let pos: Vec<_> = ids
            .iter()
            .flat_map(|id| c.route_of(*id))
            .map(|(_, p)| p)
            .collect();
        spatial_spread(&pos)
    };
    let a_spread = spread(&aw, &cap_a);
    // Same computation for the GPSR world (different world type).
    let g_spread = {
        let ids: Vec<_> = gw
            .metrics()
            .packets
            .iter()
            .enumerate()
            .filter(|(_, p)| p.session == SessionId(0))
            .map(|(i, _)| alert_sim::PacketId(i as u64))
            .collect();
        let c = cap_g.lock();
        let pos: Vec<_> = ids
            .iter()
            .flat_map(|id| c.route_of(*id))
            .map(|(_, p)| p)
            .collect();
        spatial_spread(&pos)
    };
    assert!(
        a_spread > g_spread,
        "ALERT spread {a_spread} m should exceed GPSR {g_spread} m"
    );
}

#[test]
fn timing_attack_weaker_against_alert() {
    // Section 3.2: GPSR's stable shortest path gives a near-constant
    // send->delivery lag; ALERT's random relays jitter it.
    let tolerance = 0.003; // 3 ms attacker precision
    let score = |is_alert: bool| -> f64 {
        let cfg = scenario();
        let (log, cap) = TrafficLog::new();
        let mut total = 0.0;
        let mut n = 0.0;
        if is_alert {
            let mut w = World::new(cfg, 23, |_, _| Alert::new(AlertConfig::default()));
            w.add_observer(Box::new(log));
            w.run();
            let c = cap.lock();
            for s in w.sessions() {
                let sends = c.send_times_of(s.src);
                let recvs = c.delivery_times_of(s.dst);
                if let Some(corr) = correlate(&sends, &recvs, tolerance) {
                    total += corr.score;
                    n += 1.0;
                }
            }
        } else {
            let mut w = World::new(cfg, 23, |_, _| Gpsr::default());
            w.add_observer(Box::new(log));
            w.run();
            let c = cap.lock();
            for s in w.sessions() {
                let sends = c.send_times_of(s.src);
                let recvs = c.delivery_times_of(s.dst);
                if let Some(corr) = correlate(&sends, &recvs, tolerance) {
                    total += corr.score;
                    n += 1.0;
                }
            }
        }
        if n == 0.0 {
            0.0
        } else {
            total / n
        }
    };
    let alert_score = score(true);
    let gpsr_score = score(false);
    assert!(
        gpsr_score > alert_score + 0.1,
        "timing attack should work better on GPSR ({gpsr_score}) than ALERT ({alert_score})"
    );
}

/// Drives an ALERT world in slices, reconstructing per-round recipient
/// sets for the destination of session 0 from the zone-delivery records.
fn intersection_experiment(defense: bool, seed: u64) -> (IntersectionAttack, NodeId, usize) {
    let mut cfg = scenario();
    cfg.speed = 4.0; // more churn makes the plain attack converge faster
    let acfg = if defense {
        AlertConfig::default().with_intersection_defense(3)
    } else {
        AlertConfig::default()
    };
    let mut w = World::new(cfg, seed, move |_, _| Alert::new(acfg));
    let dst = w.sessions()[0].dst;
    let mut attack = IntersectionAttack::new();
    let mut seen_per_node = vec![0usize; 200];
    let mut t = 0.0;
    let mut deliveries = 0usize;
    while t < 60.0 {
        t += 0.5;
        w.run_until(t);
        #[allow(clippy::needless_range_loop)] // i doubles as the NodeId
        for i in 0..200 {
            let node = NodeId(i);
            let records = &w.protocol(node).zone_deliveries;
            for rec in records.iter().skip(seen_per_node[i]) {
                if rec.session != SessionId(0) {
                    continue;
                }
                let recipients: RecipientSet = match &rec.holders {
                    // Defense on: the attacker reads the link-layer
                    // multicast addressing — the intended recipients of
                    // every hold round, delivered or not.
                    Some(holders) => holders
                        .iter()
                        .filter_map(|p| w.pseudonym_owner(*p))
                        .collect(),
                    // Plain broadcast: the attacker observes physical
                    // reception. It correlates rounds with the
                    // destination's *successful* receptions (Fig. 5
                    // watches the members while "D is conducting
                    // communication"); a failed attempt later rescued by
                    // retransmission is a different round.
                    None => {
                        let delivered_now = w.metrics().packets.iter().any(|p| {
                            p.session == rec.session
                                && p.seq == rec.seq
                                && p.delivered_at
                                    .is_some_and(|d| d >= rec.time - 1e-9 && d <= rec.time + 2.5)
                        });
                        if !delivered_now {
                            continue;
                        }
                        w.nodes_within(w.position(node), w.config().mac.range_m)
                            .into_iter()
                            .collect()
                    }
                };
                if !recipients.is_empty() {
                    deliveries += 1;
                    attack.observe(&recipients);
                }
            }
            seen_per_node[i] = records.len();
        }
    }
    w.run();
    (attack, dst, deliveries)
}

#[test]
fn intersection_attack_succeeds_without_defense() {
    let (attack, dst, deliveries) = intersection_experiment(false, 24);
    assert!(deliveries > 10, "need enough rounds, got {deliveries}");
    // The candidate set must shrink dramatically and still contain D (or
    // have already collapsed to exactly D).
    assert!(
        !attack.destination_excluded(dst),
        "plain broadcast cannot hide D from the observer"
    );
    let final_size = attack.anonymity_degree();
    let initial_size = *attack.history.first().unwrap();
    assert!(
        final_size <= 5 && final_size * 4 <= initial_size,
        "after {} rounds the candidate set should have collapsed towards D: {} -> {final_size}",
        attack.rounds(),
        initial_size
    );
}

#[test]
fn intersection_attack_foiled_by_defense() {
    let (attack, dst, deliveries) = intersection_experiment(true, 24);
    assert!(deliveries > 10, "need enough rounds, got {deliveries}");
    assert!(
        attack.destination_excluded(dst) || !attack.identified(dst),
        "defense failed: attacker identified the destination"
    );
    // The strong claim of Section 3.3: D is absent from at least one
    // intended recipient set, so the intersection excludes it permanently.
    assert!(
        attack.destination_excluded(dst),
        "the two-step delivery should exclude D from some round"
    );
}

//! The Section 3.1 active-attack claims, end to end: compromised relays
//! cannot stop ALERT communication the way they stop fixed-path
//! geographic routing, and a stationary interceptor sees far less of an
//! ALERT session.

use alert_adversary::{choose_compromised, interception_fraction, Blackhole};
use alert_core::{Alert, AlertConfig};
use alert_protocols::Gpsr;
use alert_sim::{FaultPlan, Metrics, MobilityKind, NodeId, ScenarioConfig, SessionId, World};
use std::collections::BTreeSet;

/// Static topology: Section 3.1's claims are about *route stability* —
/// node mobility would later shift even a fixed shortest path, diluting
/// both the attack and the comparison.
fn scenario() -> ScenarioConfig {
    let mut cfg = ScenarioConfig::default()
        .with_nodes(200)
        .with_duration(60.0)
        .with_mobility(MobilityKind::Static);
    cfg.traffic.pairs = 4;
    cfg
}

/// Per-session delivery rates.
fn session_rates(m: &Metrics) -> Vec<f64> {
    (0..4)
        .map(|s| {
            let pk: Vec<_> = m
                .packets
                .iter()
                .filter(|p| p.session == SessionId(s))
                .collect();
            pk.iter().filter(|p| p.delivered_at.is_some()).count() as f64 / pk.len().max(1) as f64
        })
        .collect()
}

/// Runs a protocol with `count` blackhole relays; returns `(metrics,
/// compromised set)`. Endpoints are never compromised (the attack targets
/// relays; a captured endpoint is a different threat model).
fn run_with_blackholes<P, F>(count: usize, seed: u64, factory: F) -> (Metrics, BTreeSet<NodeId>)
where
    P: alert_sim::ProtocolNode,
    F: Fn() -> P + Copy,
{
    // Derive the session endpoints with a dry build (same config + seed
    // give identical sessions).
    let probe = World::new(scenario(), seed, move |_, _| factory());
    let endpoints: BTreeSet<NodeId> = probe
        .sessions()
        .iter()
        .flat_map(|s| [s.src, s.dst])
        .collect();
    drop(probe);
    let compromised = choose_compromised(200, count, &endpoints, seed ^ 0xBAD);
    let comp = compromised.clone();
    let mut w = World::new(scenario(), seed, move |id, _| {
        Blackhole::new(factory(), comp.contains(&id))
    });
    w.run();
    (w.metrics().clone(), compromised)
}

#[test]
fn blackholes_swallow_traffic() {
    // ALERT's randomized routes are guaranteed to cross some of the 30
    // blackholes over a 60 s session (a fixed GPSR path might miss all of
    // them on a lucky seed).
    let (m, compromised) = run_with_blackholes(30, 1, || Alert::new(AlertConfig::default()));
    assert_eq!(compromised.len(), 30);
    assert!(
        m.drops.get("blackhole_swallowed").copied().unwrap_or(0) > 0,
        "blackholes never received anything to swallow"
    );
}

#[test]
fn compromise_cannot_completely_stop_alert_sessions() {
    // The Section 3.1 claim verbatim: "the communication of two nodes in
    // ALERT cannot be completely stopped by compromising certain nodes...
    // In contrast, these attacks are easy to perform in geographic
    // routing". With 15% of relays blackholed on a static topology, GPSR
    // sessions are binary — a blackhole on the fixed shortest path kills
    // the pair outright — while every ALERT session keeps delivering via
    // per-packet route randomization.
    let mut gpsr_dead = 0usize;
    let mut alert_dead = 0usize;
    let mut alert_min: f64 = 1.0;
    for seed in 0..4 {
        let (am, _) = run_with_blackholes(30, seed, || Alert::new(AlertConfig::default()));
        let (gm, _) = run_with_blackholes(30, seed, Gpsr::default);
        gpsr_dead += session_rates(&gm).iter().filter(|&&r| r < 0.05).count();
        let ar = session_rates(&am);
        alert_dead += ar.iter().filter(|&&r| r < 0.05).count();
        alert_min = alert_min.min(ar.iter().copied().fold(1.0, f64::min));
    }
    assert!(
        gpsr_dead >= 2,
        "expected some GPSR pairs completely cut off, saw {gpsr_dead}"
    );
    assert_eq!(
        alert_dead, 0,
        "no ALERT session may be completely stopped (min session rate {alert_min:.2})"
    );
}

#[test]
fn interception_is_partial_under_alert_total_under_gpsr() {
    // A stationary compromised relay on a GPSR shortest path sees every
    // packet of that pair; under ALERT it sees a fraction. Static
    // topology: mobility would shift GPSR's path on its own.
    let seed = 7;
    let mut w = World::new(scenario(), seed, |_, _| Alert::new(AlertConfig::default()));
    w.run();
    let am = w.metrics().clone();
    let mut w = World::new(scenario(), seed, |_, _| Gpsr::default());
    w.run();
    let gm = w.metrics().clone();

    // The "attacker" compromises, post hoc, the single best relay for
    // each session — the strongest stationary interceptor.
    let best_interception = |m: &Metrics, session: u32| -> f64 {
        let endpoints: BTreeSet<NodeId> = m
            .packets
            .iter()
            .filter(|p| p.session == SessionId(session))
            .flat_map(|p| [p.src, p.dst])
            .collect();
        let all_relays: BTreeSet<NodeId> = m
            .packets
            .iter()
            .filter(|p| p.session == SessionId(session))
            .flat_map(|p| p.participants.iter().copied())
            .filter(|n| !endpoints.contains(n))
            .collect();
        all_relays
            .iter()
            .map(|&r| interception_fraction(m, SessionId(session), &[r].into_iter().collect()))
            .fold(0.0, f64::max)
    };

    let mut alert_best = 0.0;
    let mut gpsr_best = 0.0;
    for s in 0..4 {
        alert_best += best_interception(&am, s) / 4.0;
        gpsr_best += best_interception(&gm, s) / 4.0;
    }
    assert!(
        gpsr_best > 0.85,
        "GPSR's best relay should see nearly everything, saw {gpsr_best:.2}"
    );
    assert!(
        alert_best < gpsr_best - 0.15,
        "ALERT's best relay ({alert_best:.2}) should see clearly less than GPSR's ({gpsr_best:.2})"
    );
}

/// ALERT delivery with `count` blackholes on top of a churn fault plan
/// crashing `crash_fraction` of the population, averaged over seeds.
fn alert_delivery_under_churn(crash_fraction: f64, count: usize, seeds: u64) -> f64 {
    let mut total = 0.0;
    for seed in 0..seeds {
        let mut cfg = scenario();
        cfg.faults = FaultPlan::churn(cfg.nodes, crash_fraction, cfg.duration_s, 0xFA17);
        let probe = World::new(cfg.clone(), seed, |_, _| Alert::new(AlertConfig::default()));
        let endpoints: BTreeSet<NodeId> = probe
            .sessions()
            .iter()
            .flat_map(|s| [s.src, s.dst])
            .collect();
        drop(probe);
        let comp = choose_compromised(cfg.nodes, count, &endpoints, seed ^ 0xBAD);
        let mut w = World::new(cfg, seed, move |id, _| {
            Blackhole::new(Alert::new(AlertConfig::default()), comp.contains(&id))
        });
        w.run();
        total += w.metrics().delivery_rate();
    }
    total / seeds as f64
}

#[test]
fn blackholes_plus_churn_degrade_alert_monotonically_without_panics() {
    // Combined-fault robustness: churn stacked on a blackhole compromise
    // must degrade ALERT's delivery gracefully. The churn schedule nests
    // (a higher crash rate downs a superset of a lower rate's victims,
    // see FaultPlan::churn), so delivery is monotone non-increasing up to
    // a small stochastic slack.
    let seeds = 2;
    let rates: Vec<f64> = [0.0, 0.15, 0.3]
        .iter()
        .map(|&f| alert_delivery_under_churn(f, 20, seeds))
        .collect();
    for r in &rates {
        assert!((0.0..=1.0).contains(r), "delivery rate {r} out of range");
    }
    assert!(
        rates[0] > 0.3,
        "blackholed but churn-free ALERT still delivers, saw {:.2}",
        rates[0]
    );
    const SLACK: f64 = 0.02;
    for w in rates.windows(2) {
        assert!(
            w[1] <= w[0] + SLACK,
            "delivery must not improve as crash rate rises: {rates:?}"
        );
    }
}

#[test]
fn compromise_free_baseline_is_unaffected_by_wrapper() {
    // The wrapper with zero compromised nodes must not change behavior.
    let (wrapped, _) = run_with_blackholes(0, 4, Gpsr::default);
    let mut w = World::new(scenario(), 4, |_, _| Gpsr::default());
    w.run();
    assert_eq!(wrapped.delivery_rate(), w.metrics().delivery_rate());
    assert_eq!(wrapped.hops_per_packet(), w.metrics().hops_per_packet());
}

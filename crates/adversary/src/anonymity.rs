//! Anonymity metrics: `k`-anonymity degree and entropy of an attacker's
//! belief, plus route-observability measures used in the evaluation.

use alert_geom::Point;
use alert_sim::NodeId;
use std::collections::BTreeMap;

/// Shannon entropy (bits) of an attacker's belief distribution over
/// candidate nodes. A uniform belief over `k` candidates has entropy
/// `log2 k` — the information-theoretic reading of `k`-anonymity.
pub fn belief_entropy(belief: &BTreeMap<NodeId, f64>) -> f64 {
    let total: f64 = belief.values().copied().sum();
    if total <= 0.0 {
        return 0.0;
    }
    belief
        .values()
        .filter(|&&p| p > 0.0)
        .map(|&p| {
            let q = p / total;
            -q * q.log2()
        })
        .sum()
}

/// The effective anonymity-set size implied by a belief: `2^entropy`.
pub fn effective_anonymity_set(belief: &BTreeMap<NodeId, f64>) -> f64 {
    2f64.powf(belief_entropy(belief))
}

/// A uniform belief over `candidates` (the classic `k`-anonymity case).
pub fn uniform_belief(candidates: &[NodeId]) -> BTreeMap<NodeId, f64> {
    let p = 1.0 / candidates.len().max(1) as f64;
    candidates.iter().map(|&n| (n, p)).collect()
}

/// Route diversity between consecutive packets of one S–D pair: the
/// Jaccard distance between participant sets. ALERT's randomized relays
/// give high distances; a protocol repeating one shortest path gives ~0.
pub fn route_jaccard_distance(a: &[NodeId], b: &[NodeId]) -> f64 {
    use std::collections::BTreeSet;
    let sa: BTreeSet<_> = a.iter().collect();
    let sb: BTreeSet<_> = b.iter().collect();
    if sa.is_empty() && sb.is_empty() {
        return 0.0;
    }
    let inter = sa.intersection(&sb).count() as f64;
    let union = sa.union(&sb).count() as f64;
    1.0 - inter / union
}

/// Mean pairwise route distance across the packets of a session — the
/// "unpredictable routing path" property of Section 3.1, as a number.
pub fn mean_route_diversity(routes: &[Vec<NodeId>]) -> f64 {
    if routes.len() < 2 {
        return 0.0;
    }
    let mut total = 0.0;
    let mut n = 0usize;
    for i in 0..routes.len() {
        for j in (i + 1)..routes.len() {
            total += route_jaccard_distance(&routes[i], &routes[j]);
            n += 1;
        }
    }
    total / n as f64
}

/// The §3.1 unpredictability claim as a number: having observed the full
/// relay set of packet `i`, what fraction of packet `i+1`'s relays did the
/// attacker already know? Averaged over consecutive pairs. A protocol that
/// repeats one path scores ~1; per-packet route randomization scores low.
pub fn next_route_predictability(routes: &[Vec<NodeId>]) -> f64 {
    use std::collections::BTreeSet;
    if routes.len() < 2 {
        return 0.0;
    }
    let mut total = 0.0;
    let mut n = 0usize;
    for w in routes.windows(2) {
        let prev: BTreeSet<_> = w[0].iter().collect();
        if w[1].is_empty() {
            continue;
        }
        let hit = w[1].iter().filter(|r| prev.contains(r)).count();
        total += hit as f64 / w[1].len() as f64;
        n += 1;
    }
    if n == 0 {
        0.0
    } else {
        total / n as f64
    }
}

/// How concentrated traffic is in space: the mean distance of transmitter
/// positions from their centroid. Shortest-path protocols concentrate
/// transmissions along the S–D line; ALERT scatters them.
pub fn spatial_spread(positions: &[Point]) -> f64 {
    if positions.is_empty() {
        return 0.0;
    }
    let n = positions.len() as f64;
    let cx = positions.iter().map(|p| p.x).sum::<f64>() / n;
    let cy = positions.iter().map(|p| p.y).sum::<f64>() / n;
    let c = Point::new(cx, cy);
    positions.iter().map(|p| p.distance(c)).sum::<f64>() / n
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nodes(ids: &[usize]) -> Vec<NodeId> {
        ids.iter().map(|&i| NodeId(i)).collect()
    }

    #[test]
    fn uniform_belief_entropy_is_log_k() {
        let b = uniform_belief(&nodes(&[1, 2, 3, 4, 5, 6, 7, 8]));
        assert!((belief_entropy(&b) - 3.0).abs() < 1e-12);
        assert!((effective_anonymity_set(&b) - 8.0).abs() < 1e-9);
    }

    #[test]
    fn concentrated_belief_has_zero_entropy() {
        let b = uniform_belief(&nodes(&[42]));
        assert_eq!(belief_entropy(&b), 0.0);
        assert_eq!(effective_anonymity_set(&b), 1.0);
    }

    #[test]
    fn skewed_belief_between_extremes() {
        let mut b = BTreeMap::new();
        b.insert(NodeId(1), 0.9);
        b.insert(NodeId(2), 0.1);
        let h = belief_entropy(&b);
        assert!(h > 0.0 && h < 1.0);
    }

    #[test]
    fn entropy_handles_unnormalized_beliefs() {
        let mut b = BTreeMap::new();
        b.insert(NodeId(1), 2.0);
        b.insert(NodeId(2), 2.0);
        assert!((belief_entropy(&b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_belief_is_zero() {
        assert_eq!(belief_entropy(&BTreeMap::new()), 0.0);
    }

    #[test]
    fn jaccard_identical_routes() {
        let r = nodes(&[1, 2, 3]);
        assert_eq!(route_jaccard_distance(&r, &r), 0.0);
    }

    #[test]
    fn jaccard_disjoint_routes() {
        assert_eq!(
            route_jaccard_distance(&nodes(&[1, 2]), &nodes(&[3, 4])),
            1.0
        );
    }

    #[test]
    fn diversity_of_repeating_path_is_zero() {
        let routes = vec![nodes(&[1, 2, 3]); 5];
        assert_eq!(mean_route_diversity(&routes), 0.0);
    }

    #[test]
    fn diversity_of_changing_paths_is_high() {
        let routes = vec![nodes(&[1, 2]), nodes(&[3, 4]), nodes(&[5, 6])];
        assert_eq!(mean_route_diversity(&routes), 1.0);
    }

    #[test]
    fn predictability_of_fixed_path_is_one() {
        let routes = vec![nodes(&[1, 2, 3]); 4];
        assert_eq!(next_route_predictability(&routes), 1.0);
    }

    #[test]
    fn predictability_of_disjoint_routes_is_zero() {
        let routes = vec![nodes(&[1, 2]), nodes(&[3, 4]), nodes(&[5, 6])];
        assert_eq!(next_route_predictability(&routes), 0.0);
    }

    #[test]
    fn predictability_partial_overlap() {
        let routes = vec![nodes(&[1, 2]), nodes(&[2, 3])];
        assert_eq!(next_route_predictability(&routes), 0.5);
    }

    #[test]
    fn predictability_needs_two_routes() {
        assert_eq!(next_route_predictability(&[nodes(&[1])]), 0.0);
        assert_eq!(next_route_predictability(&[]), 0.0);
    }

    #[test]
    fn spread_zero_for_point_mass() {
        let p = vec![Point::new(5.0, 5.0); 10];
        assert_eq!(spatial_spread(&p), 0.0);
    }

    #[test]
    fn spread_larger_for_scattered_traffic() {
        let line: Vec<Point> = (0..10).map(|i| Point::new(i as f64 * 10.0, 0.0)).collect();
        let scattered: Vec<Point> = (0..10)
            .map(|i| {
                Point::new(
                    ((i * 37) % 10) as f64 * 100.0,
                    ((i * 59) % 10) as f64 * 100.0,
                )
            })
            .collect();
        assert!(spatial_spread(&scattered) > spatial_spread(&line));
    }
}

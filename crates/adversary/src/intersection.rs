//! The intersection attack of Section 3.3 (Fig. 5).
//!
//! The attacker repeatedly observes which nodes receive packets in the
//! destination zone. Because the destination is present in *every* round
//! while other members drift in and out, intersecting the rounds'
//! recipient sets converges on the destination. ALERT's countermeasure
//! makes the destination occasionally *absent* from the intended recipient
//! set (it receives held packets a round late), so the intersection
//! empties instead of converging.

use alert_sim::NodeId;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// One observation round: the set of nodes the attacker believes received
/// a packet of the monitored session.
pub type RecipientSet = BTreeSet<NodeId>;

/// The attacker's evolving state across rounds.
#[derive(Debug, Clone, Default)]
pub struct IntersectionAttack {
    /// Candidate destinations: the intersection of all observed rounds;
    /// `None` before the first round.
    candidates: Option<RecipientSet>,
    /// |candidates| after each round, for plotting convergence.
    pub history: Vec<usize>,
    rounds: usize,
}

impl IntersectionAttack {
    /// Creates an attacker with no observations.
    pub fn new() -> Self {
        Self::default()
    }

    /// Feeds one round of observed recipients.
    pub fn observe(&mut self, recipients: &RecipientSet) {
        self.rounds += 1;
        self.candidates = Some(match self.candidates.take() {
            None => recipients.clone(),
            Some(prev) => prev.intersection(recipients).copied().collect(),
        });
        self.history
            .push(self.candidates.as_ref().map_or(0, BTreeSet::len));
    }

    /// Rounds observed so far.
    pub fn rounds(&self) -> usize {
        self.rounds
    }

    /// Current candidate set (empty before any observation).
    pub fn candidates(&self) -> RecipientSet {
        self.candidates.clone().unwrap_or_default()
    }

    /// The attack succeeds when the candidates collapse to exactly the
    /// destination.
    pub fn identified(&self, destination: NodeId) -> bool {
        match &self.candidates {
            Some(c) => c.len() == 1 && c.contains(&destination),
            None => false,
        }
    }

    /// The defense wins when the destination has been *excluded* — it was
    /// absent from at least one observed recipient set, so no amount of
    /// further observation can ever identify it by intersection.
    pub fn destination_excluded(&self, destination: NodeId) -> bool {
        match &self.candidates {
            Some(c) => !c.contains(&destination),
            None => false,
        }
    }

    /// Remaining anonymity degree: the paper's `k`-anonymity measured
    /// against this attacker (candidate-set size).
    pub fn anonymity_degree(&self) -> usize {
        self.candidates.as_ref().map_or(usize::MAX, BTreeSet::len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(ids: &[usize]) -> RecipientSet {
        ids.iter().map(|&i| NodeId(i)).collect()
    }

    #[test]
    fn converges_on_always_present_destination() {
        // Fig. 5a/5b: D (id 0) is in every round; others churn.
        let mut atk = IntersectionAttack::new();
        atk.observe(&set(&[0, 1, 2, 3, 4]));
        atk.observe(&set(&[0, 3, 5, 6, 7]));
        assert_eq!(atk.candidates(), set(&[0, 3]));
        atk.observe(&set(&[0, 8, 9]));
        assert!(atk.identified(NodeId(0)));
        assert_eq!(atk.history, vec![5, 2, 1]);
        assert_eq!(atk.anonymity_degree(), 1);
    }

    #[test]
    fn defense_excludes_destination_permanently() {
        // Fig. 5c: D misses one round's intended recipient set.
        let mut atk = IntersectionAttack::new();
        atk.observe(&set(&[0, 1, 2]));
        atk.observe(&set(&[1, 3, 4])); // D (0) held over -> absent
        assert!(atk.destination_excluded(NodeId(0)));
        // Even if D reappears forever after, intersection can't recover.
        for _ in 0..10 {
            atk.observe(&set(&[0, 1]));
        }
        assert!(!atk.identified(NodeId(0)));
        assert!(atk.destination_excluded(NodeId(0)));
    }

    #[test]
    fn no_observation_no_conclusion() {
        let atk = IntersectionAttack::new();
        assert!(!atk.identified(NodeId(0)));
        assert!(!atk.destination_excluded(NodeId(0)));
        assert_eq!(atk.anonymity_degree(), usize::MAX);
        assert_eq!(atk.rounds(), 0);
    }

    #[test]
    fn intersection_can_empty_entirely() {
        let mut atk = IntersectionAttack::new();
        atk.observe(&set(&[1, 2]));
        atk.observe(&set(&[3, 4]));
        assert_eq!(atk.anonymity_degree(), 0);
        assert!(atk.candidates().is_empty());
    }

    #[test]
    fn history_is_monotone_nonincreasing() {
        let mut atk = IntersectionAttack::new();
        atk.observe(&set(&[0, 1, 2, 3, 4, 5]));
        atk.observe(&set(&[0, 1, 2, 3]));
        atk.observe(&set(&[0, 1, 2, 3]));
        atk.observe(&set(&[0, 2]));
        for w in atk.history.windows(2) {
            assert!(w[1] <= w[0]);
        }
    }
}

/// Summary of an intersection-attack experiment over a whole session
/// (produced by the benchmark harness, printed for Fig. 5c).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct IntersectionOutcome {
    /// Rounds the attacker observed.
    pub rounds: usize,
    /// Final candidate-set size.
    pub final_candidates: usize,
    /// Whether the attacker pinned the destination.
    pub identified: bool,
    /// Whether the defense excluded the destination permanently.
    pub destination_excluded: bool,
}

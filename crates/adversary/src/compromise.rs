//! Node-compromise attacks (paper Sections 2.1 and 3.1).
//!
//! The attacker "can intrude on some specific vulnerable nodes to control
//! their behavior, e.g., with denial-of-service attacks, which may cut the
//! routing in existing anonymous geographic routing methods" (§2.1), and
//! the paper claims ALERT resists this: "the communication of two nodes in
//! ALERT cannot be completely stopped by compromising certain nodes
//! because the number of possible participating nodes in each packet
//! transmission is very large due to the dynamic route changes. In
//! contrast, these attacks are easy to perform in geographic routing"
//! (§3.1).
//!
//! [`Blackhole`] wraps *any* protocol: a compromised node participates in
//! the control plane (beacons keep flowing — it looks legitimate) but
//! silently drops every data-plane frame it should forward. The
//! interception analysis measures the dual capability: how much of a
//! session a stationary compromised relay gets to *see*.

use alert_sim::{Api, DataRequest, Frame, Metrics, NodeId, ProtocolNode, SessionId, TimerToken};
use std::collections::BTreeSet;

/// Wraps a routing protocol; compromised instances drop every received
/// frame instead of processing it (a blackhole / packet-interception
/// node). Sources and destinations are never compromised in experiments —
/// the attack targets *relays*.
pub struct Blackhole<P> {
    inner: P,
    compromised: bool,
}

impl<P> Blackhole<P> {
    /// Wraps `inner`; `compromised` nodes drop all traffic they receive.
    pub fn new(inner: P, compromised: bool) -> Self {
        Blackhole { inner, compromised }
    }

    /// Whether this node is under attacker control.
    pub fn is_compromised(&self) -> bool {
        self.compromised
    }

    /// Access to the wrapped protocol (e.g. ALERT's zone-delivery records).
    pub fn inner(&self) -> &P {
        &self.inner
    }
}

impl<P: ProtocolNode> ProtocolNode for Blackhole<P> {
    type Msg = P::Msg;

    fn name() -> &'static str {
        P::name()
    }

    fn on_start(&mut self, api: &mut Api<'_, Self::Msg>) {
        // Compromised nodes still behave normally at startup (they must
        // look legitimate to stay in neighbor tables).
        self.inner.on_start(api);
    }

    fn on_data_request(&mut self, api: &mut Api<'_, Self::Msg>, req: &DataRequest) {
        self.inner.on_data_request(api, req);
    }

    fn on_frame(&mut self, api: &mut Api<'_, Self::Msg>, frame: Frame<Self::Msg>) {
        if self.compromised {
            api.mark_drop("blackhole_swallowed");
            return;
        }
        self.inner.on_frame(api, frame);
    }

    fn on_timer(&mut self, api: &mut Api<'_, Self::Msg>, token: TimerToken) {
        if self.compromised {
            return; // a blackhole also stalls its own pending forwards
        }
        self.inner.on_timer(api, token);
    }

    fn on_neighbor_lost(
        &mut self,
        api: &mut Api<'_, Self::Msg>,
        neighbor: &alert_sim::NeighborEntry,
    ) {
        if self.compromised {
            return; // a blackhole repairs nothing
        }
        self.inner.on_neighbor_lost(api, neighbor);
    }
}

/// Chooses `count` nodes to compromise, deterministically from `seed`,
/// never touching the protected `endpoints` (the attack targets relays).
pub fn choose_compromised(
    total_nodes: usize,
    count: usize,
    endpoints: &BTreeSet<NodeId>,
    seed: u64,
) -> BTreeSet<NodeId> {
    // Simple deterministic LCG shuffle — good enough for picking victims.
    let mut order: Vec<usize> = (0..total_nodes).collect();
    let mut state = seed
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    for i in (1..order.len()).rev() {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let j = (state >> 33) as usize % (i + 1);
        order.swap(i, j);
    }
    order
        .into_iter()
        .map(NodeId)
        .filter(|n| !endpoints.contains(n))
        .take(count)
        .collect()
}

/// Per-session interception analysis: the fraction of a session's packets
/// that each compromised node carried (and could therefore read, delay,
/// or drop). In a fixed-shortest-path protocol a well-placed relay sees
/// *every* packet of a pair; under ALERT's route randomization it sees
/// only a slice.
pub fn interception_fraction(
    metrics: &Metrics,
    session: SessionId,
    compromised: &BTreeSet<NodeId>,
) -> f64 {
    let packets: Vec<_> = metrics
        .packets
        .iter()
        .filter(|p| p.session == session)
        .collect();
    if packets.is_empty() {
        return 0.0;
    }
    compromised
        .iter()
        .map(|c| {
            packets
                .iter()
                .filter(|p| p.participants.contains(c))
                .count() as f64
                / packets.len() as f64
        })
        .fold(0.0, f64::max)
}

/// Result of one denial-of-service experiment.
#[derive(Debug, Clone, Copy)]
pub struct DosOutcome {
    /// Fraction of nodes compromised.
    pub compromised_fraction: f64,
    /// Delivery rate achieved despite the blackholes.
    pub delivery_rate: f64,
    /// Worst-case per-session interception by any single compromised node.
    pub max_interception: f64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use alert_sim::PacketId;

    fn metrics_with_routes(routes: &[&[usize]]) -> Metrics {
        let mut m = Metrics::default();
        for (i, route) in routes.iter().enumerate() {
            let id = m.register_packet(SessionId(0), i as u32, NodeId(0), NodeId(99), 0.0, 512);
            for &n in *route {
                m.record_hop(id, NodeId(n));
            }
            m.record_delivery(id, 1.0);
            let _ = PacketId(0);
        }
        m
    }

    #[test]
    fn interception_full_on_fixed_path() {
        // Every packet crosses node 5: a compromised 5 sees 100%.
        let m = metrics_with_routes(&[&[1, 5, 9], &[2, 5, 9], &[3, 5, 8]]);
        let comp: BTreeSet<NodeId> = [NodeId(5)].into_iter().collect();
        assert_eq!(interception_fraction(&m, SessionId(0), &comp), 1.0);
    }

    #[test]
    fn interception_partial_on_random_paths() {
        let m = metrics_with_routes(&[&[1, 5], &[2, 6], &[3, 7], &[4, 5]]);
        let comp: BTreeSet<NodeId> = [NodeId(5), NodeId(6)].into_iter().collect();
        // Node 5 carries 2/4, node 6 carries 1/4 -> max = 0.5.
        assert_eq!(interception_fraction(&m, SessionId(0), &comp), 0.5);
    }

    #[test]
    fn interception_empty_cases() {
        let m = metrics_with_routes(&[]);
        let comp: BTreeSet<NodeId> = [NodeId(5)].into_iter().collect();
        assert_eq!(interception_fraction(&m, SessionId(0), &comp), 0.0);
        let m = metrics_with_routes(&[&[1, 2]]);
        assert_eq!(
            interception_fraction(&m, SessionId(0), &BTreeSet::new()),
            0.0
        );
    }

    #[test]
    fn choose_compromised_respects_endpoints() {
        let endpoints: BTreeSet<NodeId> = [NodeId(0), NodeId(1)].into_iter().collect();
        for seed in 0..20 {
            let chosen = choose_compromised(50, 10, &endpoints, seed);
            assert_eq!(chosen.len(), 10);
            assert!(chosen.is_disjoint(&endpoints), "seed {seed}");
        }
    }

    #[test]
    fn choose_compromised_is_deterministic() {
        let e = BTreeSet::new();
        assert_eq!(
            choose_compromised(100, 7, &e, 42),
            choose_compromised(100, 7, &e, 42)
        );
        assert_ne!(
            choose_compromised(100, 7, &e, 42),
            choose_compromised(100, 7, &e, 43)
        );
    }
}

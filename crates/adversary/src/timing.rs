//! The timing attack of Section 3.2.
//!
//! "Through packet departure and arrival times, an intruder can identify
//! the packets transmitted between S and D": if node A's send times and
//! node B's receive times exhibit a *fixed* lag (the paper's 5-second
//! example), the pair is probably communicating. The correlator below
//! scores a candidate (sender, receiver) pair by the fraction of sends
//! whose nearest subsequent receive sits within a tolerance of the median
//! lag. Geographic baselines with stable shortest paths score near 1;
//! ALERT's per-packet route randomization spreads the lags and the score
//! drops.

use serde::{Deserialize, Serialize};

/// Result of correlating one (sender, receiver) candidate pair.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimingCorrelation {
    /// The lag the attacker locks onto (median of observed lags), seconds.
    pub lag_s: f64,
    /// Spread of the lags (interquartile range), seconds.
    pub lag_iqr_s: f64,
    /// Fraction of sends matched by a receive within the tolerance of the
    /// locked lag — the attacker's confidence.
    pub score: f64,
    /// Number of send events used.
    pub samples: usize,
}

/// Correlates send times at a suspected source with receive times at a
/// suspected destination.
///
/// `tolerance_s` is the attacker's timing precision (how much jitter it
/// tolerates around the locked lag). Returns `None` when fewer than three
/// sends have matching receives — not enough to lock a lag.
pub fn correlate(sends: &[f64], receives: &[f64], tolerance_s: f64) -> Option<TimingCorrelation> {
    if sends.is_empty() || receives.is_empty() {
        return None;
    }
    // For each send, the nearest receive after it (candidate match).
    let mut sorted_recv = receives.to_vec();
    sorted_recv.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
    let mut lags: Vec<f64> = Vec::with_capacity(sends.len());
    for &s in sends {
        let idx = sorted_recv.partition_point(|&r| r < s);
        if idx < sorted_recv.len() {
            lags.push(sorted_recv[idx] - s);
        }
    }
    if lags.len() < 3 {
        return None;
    }
    let mut sorted_lags = lags.clone();
    sorted_lags.sort_by(|a, b| a.partial_cmp(b).expect("finite lags"));
    let median = sorted_lags[sorted_lags.len() / 2];
    let q1 = sorted_lags[sorted_lags.len() / 4];
    let q3 = sorted_lags[(sorted_lags.len() * 3) / 4];
    let matched = lags
        .iter()
        .filter(|&&l| (l - median).abs() <= tolerance_s)
        .count();
    Some(TimingCorrelation {
        lag_s: median,
        lag_iqr_s: q3 - q1,
        score: matched as f64 / sends.len() as f64,
        samples: sends.len(),
    })
}

/// Convenience verdict: does the attacker link the pair at this
/// confidence threshold?
pub fn links_pair(c: &TimingCorrelation, threshold: f64) -> bool {
    c.score >= threshold && c.samples >= 5
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_lag_scores_high() {
        // The paper's example: a constant 5 s lag across observations.
        let sends: Vec<f64> = (0..20).map(|i| i as f64 * 7.0).collect();
        let recvs: Vec<f64> = sends.iter().map(|s| s + 5.0).collect();
        let c = correlate(&sends, &recvs, 0.01).unwrap();
        assert!((c.lag_s - 5.0).abs() < 1e-9);
        assert_eq!(c.score, 1.0);
        assert!(links_pair(&c, 0.8));
    }

    #[test]
    fn jittered_lag_scores_low() {
        // Deterministic pseudo-jitter in [0, 2) s, large relative to the
        // 10 ms tolerance: the attacker cannot lock a lag.
        let sends: Vec<f64> = (0..40).map(|i| i as f64 * 7.0).collect();
        let recvs: Vec<f64> = sends
            .iter()
            .enumerate()
            .map(|(i, s)| s + 0.5 + ((i * 2654435761) % 2000) as f64 / 1000.0)
            .collect();
        let c = correlate(&sends, &recvs, 0.01).unwrap();
        assert!(c.score < 0.3, "jittered score {} too high", c.score);
        assert!(!links_pair(&c, 0.8));
        assert!(
            c.lag_iqr_s > 0.2,
            "iqr {} should expose the jitter",
            c.lag_iqr_s
        );
    }

    #[test]
    fn unrelated_streams_score_low() {
        // Receiver fires on its own schedule, uncorrelated with sends.
        let sends: Vec<f64> = (0..30).map(|i| i as f64 * 7.0).collect();
        let recvs: Vec<f64> = (0..30)
            .map(|i| 3.0 + i as f64 * 7.0 + ((i * 40503) % 4000) as f64 / 1000.0)
            .collect();
        let c = correlate(&sends, &recvs, 0.01).unwrap();
        assert!(c.score < 0.4, "unrelated score {}", c.score);
    }

    #[test]
    fn too_few_samples_is_none() {
        assert!(correlate(&[1.0], &[2.0], 0.1).is_none());
        assert!(correlate(&[], &[2.0], 0.1).is_none());
        assert!(correlate(&[1.0, 2.0], &[], 0.1).is_none());
        // Receives all before sends: no forward matches.
        assert!(correlate(&[10.0, 20.0, 30.0, 40.0], &[1.0, 2.0], 0.1).is_none());
    }

    #[test]
    fn partial_match_counts_fraction() {
        // Half the sends have the fixed lag; the rest have no receive.
        let sends: Vec<f64> = (0..10).map(|i| i as f64 * 10.0).collect();
        let recvs: Vec<f64> = sends.iter().take(5).map(|s| s + 1.0).collect();
        let c = correlate(&sends, &recvs, 0.01).unwrap();
        // Sends 5..9 have no subsequent receive; sends 0..4 match.
        assert!((c.score - 0.5).abs() < 0.11, "score {}", c.score);
    }
}

//! Insider adversaries: compromised relays that stay *in* the protocol
//! (paper §2.1's node-intrusion attacker, taken beyond the blackhole of
//! [`crate::compromise`]).
//!
//! An insider keeps beaconing and routing so it looks legitimate, but
//! applies its [`InsiderMode`] to every frame it is asked to process:
//! log it for later traffic analysis, drop it, or modify its payload.
//! Modification models per-hop integrity protection: a tampered frame is
//! caught at the insider and dies there ([`InsiderMode::Modify`]), unless
//! the deliberately broken stealth variant is selected
//! ([`InsiderMode::ModifyStealth`]), which exists so the simcheck
//! `insider-containment` oracle can prove it catches undetected
//! tampering.
//!
//! Everything an insider sees lands in a shared [`TamperLog`]; the
//! per-packet observer sets can then be scored with the §3.3
//! intersection attacker ([`choke_points`]) to ask the paper's question:
//! does any single compromised relay see *every* packet of a session?

use crate::intersection::IntersectionAttack;
use alert_sim::{Api, DataRequest, Frame, InsiderMode, NodeId, ProtocolNode, TimerToken};
use parking_lot::Mutex;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// Everything the insider cohort observed and did during one run, shared
/// by every compromised wrapper instance.
#[derive(Debug, Default)]
pub struct TamperLog {
    /// Frames received by compromised relays (their observation feed).
    pub observed: u64,
    /// Frames swallowed by [`InsiderMode::Drop`] insiders.
    pub dropped: u64,
    /// Frames whose payload an insider corrupted (both modify variants).
    pub modified: u64,
    /// Packet ids of tampered frames, when the wire format exposes one
    /// to the harness's extractor.
    pub tampered_packets: BTreeSet<u64>,
    /// `(insider node, packet id)` sightings, for intersection scoring.
    pub sightings: Vec<(u64, Option<u64>)>,
}

impl TamperLog {
    /// Scores the observation log with the §3.3 intersection attacker:
    /// each packet's set of observing insiders is one round, so the
    /// surviving candidate set is exactly the relays that saw *every*
    /// observed packet — the choke points whose compromise intercepts
    /// the whole session.
    pub fn choke_points(&self) -> IntersectionAttack {
        let mut per_packet: BTreeMap<u64, BTreeSet<NodeId>> = BTreeMap::new();
        for &(node, pid) in &self.sightings {
            if let Some(p) = pid {
                per_packet.entry(p).or_default().insert(NodeId(node as usize));
            }
        }
        let mut attack = IntersectionAttack::new();
        for set in per_packet.values() {
            attack.observe(set);
        }
        attack
    }
}

/// Shared handle to a run's [`TamperLog`].
pub type TamperHandle = Arc<Mutex<TamperLog>>;

/// Creates an empty shared tamper log for one run.
pub fn tamper_log() -> TamperHandle {
    Arc::new(Mutex::new(TamperLog::default()))
}

/// Wraps a routing protocol; compromised instances apply `mode` to every
/// frame they receive while behaving normally otherwise. `extract` pulls
/// an application packet id out of a wire message *for the log only* —
/// insider behavior never depends on its result, so a protocol whose
/// frames carry no extractable id is attacked identically, just scored
/// more coarsely.
pub struct Insider<P, F> {
    inner: P,
    node: u64,
    mode: InsiderMode,
    compromised: bool,
    log: TamperHandle,
    extract: F,
}

impl<P, F> Insider<P, F> {
    /// Wraps `inner` running on `node`; only `compromised` instances
    /// deviate from the honest protocol.
    pub fn new(
        inner: P,
        node: u64,
        mode: InsiderMode,
        compromised: bool,
        log: TamperHandle,
        extract: F,
    ) -> Self {
        Insider {
            inner,
            node,
            mode,
            compromised,
            log,
            extract,
        }
    }

    /// Whether this node is under attacker control.
    pub fn is_compromised(&self) -> bool {
        self.compromised
    }

    /// Access to the wrapped protocol.
    pub fn inner(&self) -> &P {
        &self.inner
    }
}

impl<P, F> ProtocolNode for Insider<P, F>
where
    P: ProtocolNode,
    F: Fn(&P::Msg) -> Option<u64>,
{
    type Msg = P::Msg;

    fn name() -> &'static str {
        P::name()
    }

    fn on_start(&mut self, api: &mut Api<'_, Self::Msg>) {
        // Insiders look legitimate: normal startup, beacons keep flowing.
        self.inner.on_start(api);
    }

    fn on_data_request(&mut self, api: &mut Api<'_, Self::Msg>, req: &DataRequest) {
        // A compromised *source* still originates its own traffic — the
        // attack targets what the node forwards for others.
        self.inner.on_data_request(api, req);
    }

    fn on_frame(&mut self, api: &mut Api<'_, Self::Msg>, frame: Frame<Self::Msg>) {
        if !self.compromised {
            self.inner.on_frame(api, frame);
            return;
        }
        let pid = (self.extract)(&frame.msg);
        {
            let mut log = self.log.lock();
            log.observed += 1;
            log.sightings.push((self.node, pid));
        }
        match self.mode {
            InsiderMode::Log => self.inner.on_frame(api, frame),
            InsiderMode::Drop => {
                self.log.lock().dropped += 1;
                api.mark_drop("insider_dropped");
            }
            InsiderMode::Modify => {
                {
                    let mut log = self.log.lock();
                    log.modified += 1;
                    if let Some(p) = pid {
                        log.tampered_packets.insert(p);
                    }
                }
                // Per-hop integrity protection catches the corruption
                // immediately: the tampered frame dies here, attributed.
                api.mark_drop("insider_modified");
            }
            InsiderMode::ModifyStealth => {
                {
                    let mut log = self.log.lock();
                    log.modified += 1;
                    if let Some(p) = pid {
                        log.tampered_packets.insert(p);
                    }
                }
                // The planted defect: tampered data flows on undetected.
                self.inner.on_frame(api, frame);
            }
        }
    }

    fn on_timer(&mut self, api: &mut Api<'_, Self::Msg>, token: TimerToken) {
        self.inner.on_timer(api, token);
    }

    fn on_neighbor_lost(
        &mut self,
        api: &mut Api<'_, Self::Msg>,
        neighbor: &alert_sim::NeighborEntry,
    ) {
        self.inner.on_neighbor_lost(api, neighbor);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn choke_point_scoring_finds_the_relay_on_every_packet() {
        let log = TamperLog {
            sightings: vec![
                (5, Some(0)),
                (6, Some(0)),
                (5, Some(1)),
                (7, Some(1)),
                (5, Some(2)),
            ],
            ..TamperLog::default()
        };
        let attack = log.choke_points();
        assert_eq!(attack.rounds(), 3);
        let c = attack.candidates();
        assert_eq!(c.len(), 1);
        assert!(c.contains(&NodeId(5)));
    }

    #[test]
    fn choke_point_scoring_ignores_unextractable_sightings() {
        let log = TamperLog {
            sightings: vec![(5, None), (6, None)],
            ..TamperLog::default()
        };
        assert_eq!(log.choke_points().rounds(), 0);
    }
}

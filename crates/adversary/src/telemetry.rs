//! Anonymity telemetry: trace-derived, per-flow anonymity-set series.
//!
//! Everything in this module is computed from a stored [`TraceEvent`]
//! sequence alone — no live simulator access — so the same telemetry can
//! be derived offline from any `--trace` JSONL file. The attacker model
//! matches [`crate::intersection`]: a passive observer who, once per
//! sampling window, notes which nodes participated in forwarding a
//! session's packets (data-plane `hop`, `rf`, and `delivered` events)
//! and intersects those rounds to hunt the destination.
//!
//! Per window and per session this yields:
//!
//! * the **recipient-set size** `k` (the window's k-anonymity degree);
//! * its **entropy** `log2 k` bits (uniform belief over the set, via
//!   [`crate::anonymity::belief_entropy`]);
//! * the attacker's **candidate count** after intersecting this window
//!   (empty windows are *not* fed to the attacker — no packets observed
//!   means no observation round, not an empty recipient set);
//! * whether the destination is already **excluded** — absent from some
//!   observed round, so intersection can never pin it.
//!
//! Windows use the `alert-timeseries/1` convention: window `k` covers
//! `(k·every_s, (k+1)·every_s]` simulated seconds, window 0 additionally
//! includes `t = 0`.

use crate::anonymity::{belief_entropy, uniform_belief};
use crate::intersection::{IntersectionAttack, RecipientSet};
use alert_sim::{NodeId, TraceEvent};
use std::collections::BTreeMap;

/// One sampling window of one session's anonymity telemetry.
#[derive(Debug, Clone, PartialEq)]
pub struct AnonymitySample {
    /// Window start (exclusive, except 0.0 which is inclusive).
    pub t_start: f64,
    /// Window end (inclusive).
    pub t_end: f64,
    /// Nodes observed forwarding or receiving this session's packets in
    /// the window — the window's k-anonymity degree.
    pub recipients: usize,
    /// Entropy (bits) of a uniform belief over the window's recipient
    /// set: `log2 recipients` (0 for empty windows).
    pub entropy_bits: f64,
    /// Intersection-attack candidate count after this window. Carries
    /// the previous value through empty (unobserved) windows;
    /// `usize::MAX` until the first observation.
    pub candidates: usize,
    /// Whether the true destination is excluded from the candidate set.
    pub destination_excluded: bool,
}

/// Whole-run anonymity telemetry for one S–D session.
#[derive(Debug, Clone, PartialEq)]
pub struct FlowAnonymity {
    /// S–D pair index (from the trace's `app_send` events).
    pub session: u64,
    /// True source node.
    pub src: u64,
    /// True destination node.
    pub dst: u64,
    /// One sample per window, covering the whole run.
    pub samples: Vec<AnonymitySample>,
    /// Whether the attacker pinned the destination (candidates collapsed
    /// to exactly `{dst}`).
    pub identified: bool,
    /// Whether the destination was excluded from some observed round.
    pub destination_excluded: bool,
    /// Final candidate-set size (`usize::MAX` if never observed).
    pub final_candidates: usize,
}

/// Window index under the `alert-timeseries/1` convention: events at
/// exactly `k·every_s` belong to the window they end.
fn window_index(t: f64, every_s: f64) -> usize {
    let idx = (t / every_s).ceil() - 1.0;
    if idx <= 0.0 {
        0
    } else {
        idx as usize
    }
}

/// Derives the per-flow anonymity timeseries from a stored trace.
///
/// `every_s` must be finite and positive (panics otherwise, matching
/// `MetricsTimeseries::new`). Sessions are discovered from `app_send`
/// events; a trace without them yields an empty vector. Flows come back
/// sorted by session id, each covering every window from 0 to the last
/// event in the trace, so same-trace calls are fully deterministic.
pub fn anonymity_timeseries(events: &[TraceEvent], every_s: f64) -> Vec<FlowAnonymity> {
    assert!(
        every_s.is_finite() && every_s > 0.0,
        "anonymity window must be finite and positive, got {every_s}"
    );
    // Pass 1: session ground truth and the packet -> session map.
    let mut flows: BTreeMap<u64, (u64, u64)> = BTreeMap::new();
    let mut packet_session: BTreeMap<u64, u64> = BTreeMap::new();
    let mut t_max = 0.0f64;
    for e in events {
        t_max = t_max.max(e.time());
        if let TraceEvent::AppSend {
            packet,
            session,
            src,
            dst,
            ..
        } = e
        {
            flows.entry(*session).or_insert((*src, *dst));
            packet_session.insert(*packet, *session);
        }
    }
    if flows.is_empty() {
        return Vec::new();
    }
    let windows = window_index(t_max, every_s) + 1;

    // Pass 2: per (session, window) recipient sets from forwarding
    // activity. Only events that place a node on a packet's path count;
    // `app_send` itself does not (the attacker watches the network, not
    // the application layer).
    let mut recipients: BTreeMap<(u64, usize), RecipientSet> = BTreeMap::new();
    for e in events {
        let observed = matches!(
            e,
            TraceEvent::Hop { .. }
                | TraceEvent::RandomForwarder { .. }
                | TraceEvent::Delivered { .. }
        );
        if !observed {
            continue;
        }
        let (Some(node), Some(packet)) = (e.node(), e.packet_id()) else {
            continue;
        };
        let Some(session) = packet_session.get(&packet) else {
            continue;
        };
        let w = window_index(e.time(), every_s);
        recipients
            .entry((*session, w))
            .or_default()
            .insert(NodeId(node as usize));
    }

    // Pass 3: run the intersection attacker over each flow's windows.
    flows
        .iter()
        .map(|(&session, &(src, dst))| {
            let dst_id = NodeId(dst as usize);
            let mut attack = IntersectionAttack::new();
            let mut samples = Vec::with_capacity(windows);
            for w in 0..windows {
                let set = recipients.get(&(session, w));
                let k = set.map_or(0, RecipientSet::len);
                if let Some(set) = set {
                    attack.observe(set);
                }
                let members: Vec<NodeId> =
                    set.map(|s| s.iter().copied().collect()).unwrap_or_default();
                samples.push(AnonymitySample {
                    t_start: w as f64 * every_s,
                    t_end: (w + 1) as f64 * every_s,
                    recipients: k,
                    // `+ 0.0` normalizes the `-0.0` a single-member
                    // belief produces, so k = 0 and k = 1 both render
                    // as plain `0.0` in the CSV.
                    entropy_bits: if k == 0 {
                        0.0
                    } else {
                        belief_entropy(&uniform_belief(&members)) + 0.0
                    },
                    candidates: attack.anonymity_degree(),
                    destination_excluded: attack.destination_excluded(dst_id),
                });
            }
            FlowAnonymity {
                session,
                src,
                dst,
                samples,
                identified: attack.identified(dst_id),
                destination_excluded: attack.destination_excluded(dst_id),
                final_candidates: attack.anonymity_degree(),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn app_send(time: f64, packet: u64, session: u64, src: u64, dst: u64) -> TraceEvent {
        TraceEvent::AppSend {
            time,
            packet,
            session,
            seq: 0,
            src,
            dst,
        }
    }

    fn hop(time: f64, node: u64, packet: u64) -> TraceEvent {
        TraceEvent::Hop { time, node, packet }
    }

    fn delivered(time: f64, node: u64, packet: u64) -> TraceEvent {
        TraceEvent::Delivered {
            time,
            node,
            packet,
            latency: 0.1,
        }
    }

    #[test]
    fn empty_trace_has_no_flows() {
        assert!(anonymity_timeseries(&[], 5.0).is_empty());
        assert!(anonymity_timeseries(&[hop(1.0, 2, 3)], 5.0).is_empty());
    }

    #[test]
    fn windows_follow_the_timeseries_convention() {
        let events = vec![
            app_send(0.0, 1, 0, 10, 20),
            hop(0.0, 10, 1),        // window 0 (t = 0 inclusive)
            hop(5.0, 11, 1),        // window 0 (boundary belongs to window it ends)
            hop(5.1, 12, 1),        // window 1
            delivered(10.0, 20, 1), // window 1
        ];
        let flows = anonymity_timeseries(&events, 5.0);
        assert_eq!(flows.len(), 1);
        let f = &flows[0];
        assert_eq!((f.session, f.src, f.dst), (0, 10, 20));
        assert_eq!(f.samples.len(), 2);
        assert_eq!(f.samples[0].recipients, 2); // {10, 11}
        assert_eq!(f.samples[1].recipients, 2); // {12, 20}
        assert_eq!(f.samples[0].t_start, 0.0);
        assert_eq!(f.samples[0].t_end, 5.0);
        assert_eq!(f.samples[1].t_start, 5.0);
        assert_eq!(f.samples[1].t_end, 10.0);
    }

    #[test]
    fn entropy_is_log2_of_recipient_count() {
        let events = vec![
            app_send(0.0, 1, 0, 1, 2),
            hop(1.0, 1, 1),
            hop(1.5, 3, 1),
            hop(2.0, 4, 1),
            delivered(3.0, 2, 1),
        ];
        let flows = anonymity_timeseries(&events, 5.0);
        let s = &flows[0].samples[0];
        assert_eq!(s.recipients, 4);
        assert!((s.entropy_bits - 2.0).abs() < 1e-12);
    }

    #[test]
    fn intersection_converges_on_persistent_destination() {
        // dst 9 receives in every window; other forwarders churn.
        let events = vec![
            app_send(0.0, 1, 0, 1, 9),
            app_send(6.0, 2, 0, 1, 9),
            app_send(11.0, 3, 0, 1, 9),
            hop(1.0, 2, 1),
            delivered(2.0, 9, 1),
            hop(7.0, 3, 2),
            delivered(8.0, 9, 2),
            hop(12.0, 4, 3),
            delivered(13.0, 9, 3),
        ];
        let flows = anonymity_timeseries(&events, 5.0);
        let f = &flows[0];
        assert!(f.identified, "intersection pins the always-present dst");
        assert_eq!(f.final_candidates, 1);
        // Candidate count is monotone non-increasing across windows.
        for w in f.samples.windows(2) {
            assert!(w[1].candidates <= w[0].candidates);
        }
    }

    #[test]
    fn countermeasure_windows_exclude_destination() {
        // Window 1 has forwarding activity but the dst is absent (packet
        // held over) — intersection empties and can never recover.
        let events = vec![
            app_send(0.0, 1, 0, 1, 9),
            app_send(6.0, 2, 0, 1, 9),
            hop(1.0, 2, 1),
            delivered(2.0, 9, 1),
            hop(7.0, 2, 2),        // dst never appears in window 1
            delivered(11.0, 9, 2), // arrives a window late
        ];
        let flows = anonymity_timeseries(&events, 5.0);
        let f = &flows[0];
        assert!(!f.identified);
        assert!(f.destination_excluded);
        assert!(f.samples[1].destination_excluded);
    }

    #[test]
    fn empty_windows_do_not_feed_the_attacker() {
        let events = vec![
            app_send(0.0, 1, 0, 1, 9),
            delivered(2.0, 9, 1),
            // windows 1..3 silent, then activity again
            app_send(16.0, 2, 0, 1, 9),
            delivered(17.0, 9, 2),
        ];
        let flows = anonymity_timeseries(&events, 5.0);
        let f = &flows[0];
        assert_eq!(f.samples.len(), 4);
        assert_eq!(f.samples[1].recipients, 0);
        // The empty windows carry the previous candidate count through.
        assert_eq!(f.samples[1].candidates, f.samples[0].candidates);
        assert!(!f.destination_excluded, "silence is not an observation");
        assert!(f.identified);
    }

    #[test]
    fn flows_are_separated_and_sorted() {
        let events = vec![
            app_send(0.0, 2, 1, 3, 4),
            app_send(0.0, 1, 0, 1, 2),
            hop(1.0, 5, 1),
            hop(1.0, 6, 2),
        ];
        let flows = anonymity_timeseries(&events, 5.0);
        assert_eq!(flows.len(), 2);
        assert_eq!(flows[0].session, 0);
        assert_eq!(flows[1].session, 1);
        assert_eq!(flows[0].samples[0].recipients, 1);
        assert_eq!(flows[1].samples[0].recipients, 1);
    }

    #[test]
    #[should_panic(expected = "finite and positive")]
    fn zero_window_panics() {
        anonymity_timeseries(&[], 0.0);
    }
}

//! A passive eavesdropper: records every transmission on the channel.
//!
//! The paper's attacker model (Section 2.1) allows battery-powered nodes
//! that "passively receive network packets and detect activities in their
//! vicinity". [`TrafficLog`] is the omnipresent version of that attacker —
//! per-transmission time, transmitter position, and frame size — which the
//! timing and intersection analyzers consume. Restricting the view to a
//! vicinity is a post-filter ([`TrafficCapture::within`]).

use alert_geom::{Point, Rect};
use alert_sim::{NodeId, Observer, PacketId, TrafficClass, TxEvent};
use parking_lot::Mutex;
use std::sync::Arc;

/// A delivery observation (ground truth; used to score attacks).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeliveryEvent {
    /// When the destination received the packet.
    pub time: f64,
    /// The receiving node.
    pub node: NodeId,
    /// Which packet.
    pub packet: PacketId,
}

/// The recorded channel activity of one run.
#[derive(Debug, Clone, Default)]
pub struct TrafficCapture {
    /// Every transmission, in send order.
    pub transmissions: Vec<TxEvent>,
    /// Every delivery at a true destination.
    pub deliveries: Vec<DeliveryEvent>,
}

impl TrafficCapture {
    /// Transmissions whose sender was inside `area` — an attacker with
    /// limited vicinity.
    pub fn within(&self, area: &Rect) -> Vec<TxEvent> {
        self.transmissions
            .iter()
            .filter(|t| area.contains(t.sender_pos))
            .copied()
            .collect()
    }

    /// Transmission times of a specific node (what a local eavesdropper
    /// learns about one position).
    pub fn send_times_of(&self, node: NodeId) -> Vec<f64> {
        self.transmissions
            .iter()
            .filter(|t| t.sender == node)
            .map(|t| t.time)
            .collect()
    }

    /// Delivery times at a specific node.
    pub fn delivery_times_of(&self, node: NodeId) -> Vec<f64> {
        self.deliveries
            .iter()
            .filter(|d| d.node == node)
            .map(|d| d.time)
            .collect()
    }

    /// Ground-truth transmitter positions of one packet, in order — the
    /// route an omniscient observer could reconstruct for that packet.
    pub fn route_of(&self, packet: PacketId) -> Vec<(NodeId, Point)> {
        self.transmissions
            .iter()
            .filter(|t| t.packet == Some(packet) && t.class == TrafficClass::Data)
            .map(|t| (t.sender, t.sender_pos))
            .collect()
    }

    /// Number of data transmissions.
    pub fn data_transmissions(&self) -> usize {
        self.transmissions
            .iter()
            .filter(|t| t.class == TrafficClass::Data)
            .count()
    }
}

/// Shared handle to a capture being filled by a [`TrafficLog`] observer.
pub type CaptureHandle = Arc<Mutex<TrafficCapture>>;

/// The [`Observer`] implementation to register with
/// [`alert_sim::World::add_observer`].
pub struct TrafficLog {
    capture: CaptureHandle,
}

impl TrafficLog {
    /// Creates a log and the handle to read it after the run.
    pub fn new() -> (TrafficLog, CaptureHandle) {
        let capture: CaptureHandle = Arc::new(Mutex::new(TrafficCapture::default()));
        (
            TrafficLog {
                capture: capture.clone(),
            },
            capture,
        )
    }
}

impl Observer for TrafficLog {
    fn on_transmission(&mut self, ev: &TxEvent) {
        self.capture.lock().transmissions.push(*ev);
    }

    fn on_delivery(&mut self, time: f64, node: NodeId, packet: PacketId) {
        self.capture
            .lock()
            .deliveries
            .push(DeliveryEvent { time, node, packet });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alert_sim::TrafficClass;

    fn tx(t: f64, sender: usize, x: f64, pkt: Option<u64>, class: TrafficClass) -> TxEvent {
        TxEvent {
            time: t,
            sender: NodeId(sender),
            sender_pos: Point::new(x, 0.0),
            receiver: None,
            bytes: 100,
            class,
            packet: pkt.map(PacketId),
        }
    }

    #[test]
    fn capture_collects_in_order() {
        let (mut log, handle) = TrafficLog::new();
        log.on_transmission(&tx(1.0, 1, 10.0, Some(0), TrafficClass::Data));
        log.on_transmission(&tx(2.0, 2, 20.0, Some(0), TrafficClass::Data));
        log.on_delivery(2.5, NodeId(3), PacketId(0));
        let c = handle.lock();
        assert_eq!(c.transmissions.len(), 2);
        assert_eq!(c.deliveries.len(), 1);
        assert_eq!(c.route_of(PacketId(0)).len(), 2);
        assert_eq!(c.data_transmissions(), 2);
    }

    #[test]
    fn vicinity_filter() {
        let (mut log, handle) = TrafficLog::new();
        log.on_transmission(&tx(1.0, 1, 10.0, None, TrafficClass::Control));
        log.on_transmission(&tx(1.0, 2, 900.0, None, TrafficClass::Control));
        let area = Rect::new(Point::new(0.0, -1.0), Point::new(100.0, 1.0));
        assert_eq!(handle.lock().within(&area).len(), 1);
    }

    #[test]
    fn per_node_timelines() {
        let (mut log, handle) = TrafficLog::new();
        log.on_transmission(&tx(1.0, 7, 0.0, None, TrafficClass::Data));
        log.on_transmission(&tx(3.0, 7, 0.0, None, TrafficClass::Data));
        log.on_transmission(&tx(2.0, 8, 0.0, None, TrafficClass::Data));
        log.on_delivery(4.0, NodeId(9), PacketId(1));
        let c = handle.lock();
        assert_eq!(c.send_times_of(NodeId(7)), vec![1.0, 3.0]);
        assert_eq!(c.delivery_times_of(NodeId(9)), vec![4.0]);
        assert!(c.delivery_times_of(NodeId(7)).is_empty());
    }

    #[test]
    fn route_excludes_control_frames() {
        let (mut log, handle) = TrafficLog::new();
        log.on_transmission(&tx(1.0, 1, 0.0, Some(5), TrafficClass::Data));
        log.on_transmission(&tx(1.1, 2, 0.0, Some(5), TrafficClass::Control));
        assert_eq!(handle.lock().route_of(PacketId(5)).len(), 1);
    }
}

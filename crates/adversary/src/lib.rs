//! # alert-adversary
//!
//! Adversary models and anonymity analyzers for the ALERT reproduction:
//!
//! * [`eavesdrop`] — a passive channel observer ([`TrafficLog`]) matching
//!   the paper's attacker capabilities (Section 2.1);
//! * [`timing`] — the timing-attack correlator of Section 3.2;
//! * [`intersection`] — the intersection attack and the evaluation of
//!   ALERT's countermeasure (Section 3.3, Fig. 5);
//! * [`compromise`] — active node compromise: blackhole relays and
//!   interception analysis (Sections 2.1, 3.1);
//! * [`insider`] — compromised relays that log, drop, or modify the
//!   frames they forward while staying in the protocol (Section 2.1),
//!   scored against the intersection attacker;
//! * [`anonymity`] — k-anonymity / entropy / route-diversity metrics;
//! * [`telemetry`] — trace-derived anonymity-set timeseries: the same
//!   intersection attacker replayed over a stored JSONL trace, windowed
//!   like `alert-timeseries/1` (feeds `tracequery anonymity`).

//! ## Example: eavesdrop on a run and correlate timings
//!
//! ```
//! use alert_adversary::{correlate, TrafficLog};
//! use alert_protocols::Gpsr;
//! use alert_sim::{ScenarioConfig, World};
//!
//! let (log, capture) = TrafficLog::new();
//! let mut cfg = ScenarioConfig::default().with_nodes(80).with_duration(10.0);
//! cfg.traffic.pairs = 2;
//! let mut world = World::new(cfg, 5, |_, _| Gpsr::default());
//! world.add_observer(Box::new(log));
//! let pair = world.sessions()[0];
//! world.run();
//! let cap = capture.lock();
//! let sends = cap.send_times_of(pair.src);
//! let recvs = cap.delivery_times_of(pair.dst);
//! if let Some(c) = correlate(&sends, &recvs, 0.005) {
//!     assert!(c.score > 0.3, "GPSR's stable path should correlate");
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod anonymity;
pub mod compromise;
pub mod eavesdrop;
pub mod insider;
pub mod intersection;
pub mod telemetry;
pub mod timing;

pub use anonymity::{
    belief_entropy, effective_anonymity_set, mean_route_diversity, next_route_predictability,
    route_jaccard_distance, spatial_spread, uniform_belief,
};
pub use compromise::{choose_compromised, interception_fraction, Blackhole, DosOutcome};
pub use eavesdrop::{CaptureHandle, DeliveryEvent, TrafficCapture, TrafficLog};
pub use insider::{tamper_log, Insider, TamperHandle, TamperLog};
pub use intersection::{IntersectionAttack, IntersectionOutcome, RecipientSet};
pub use telemetry::{anonymity_timeseries, AnonymitySample, FlowAnonymity};
pub use timing::{correlate, links_pair, TimingCorrelation};

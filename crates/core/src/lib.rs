//! # alert-core
//!
//! ALERT — the **A**nonymous **L**ocation-based **E**fficient **R**outing
//! pro**T**ocol of Shen & Zhao (ICPP 2011 / IEEE TMC 2012) — implemented
//! over the [`alert_sim`] MANET substrate.
//!
//! The protocol's pieces map to modules as follows:
//!
//! * [`AlertConfig`] — `k`, `H`, notify-and-go, intersection defense,
//!   confirmation/retransmission knobs;
//! * [`packet`] — the Fig. 4 universal RREQ/RREP/NAK packet format;
//! * [`protocol`] — the routing state machine: hierarchical zone
//!   partition, temporary destinations, random forwarders, `k`-anonymity
//!   zone delivery, "notify and go", and the Section 3.3
//!   intersection-attack countermeasure.
//!
//! ## Quickstart
//!
//! ```
//! use alert_core::{Alert, AlertConfig};
//! use alert_sim::{ScenarioConfig, World};
//!
//! let mut scenario = ScenarioConfig::default().with_nodes(100).with_duration(10.0);
//! scenario.traffic.pairs = 3;
//! let mut world = World::new(scenario, 42, |_, _| Alert::new(AlertConfig::default()));
//! world.run();
//! assert!(world.metrics().delivery_rate() > 0.5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
pub mod intersection;
pub mod packet;
pub mod protocol;

pub use config::AlertConfig;
pub use intersection::{coverage_percent, estimate_p_c, minimal_m_for_full_coverage};
pub use packet::{AlertMsg, AlertPacket, PacketRole, RoutePhase, ALERT_FIXED_HEADER_BYTES};
pub use protocol::{alert_factory, Alert, ZoneDeliveryRecord};

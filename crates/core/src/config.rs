//! ALERT protocol parameters.

use serde::{Deserialize, Serialize};

/// Tunables of the ALERT protocol (Sections 2.3–2.6, 3.3).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AlertConfig {
    /// Destination anonymity parameter `k`: the target number of nodes in
    /// the destination zone. Together with node density it determines the
    /// number of partitions `H = log2(rho G / k)` (Section 2.4).
    pub k: f64,
    /// Overrides the computed `H` when set (the paper sweeps `H` directly
    /// in Figs. 11 and 13a).
    pub h_override: Option<u32>,
    /// Hop budget for each GPSR leg between random forwarders.
    pub leg_ttl: u32,
    /// Total hop budget per packet attempt (bounds pathological routing
    /// geometries; cf. the IP TTL).
    pub packet_ttl: u32,
    /// Enable the "notify and go" source-anonymity mechanism (Section 2.6).
    pub notify_and_go: bool,
    /// "Notify and go" minimum back-off `t`, seconds ("a small value that
    /// does not affect the transmission latency").
    pub notify_t_s: f64,
    /// "Notify and go" back-off window `t0`, seconds (long enough to
    /// minimize interference, short enough not to delay traffic).
    pub notify_t0_s: f64,
    /// Size of a cover packet in bytes ("only several bytes of random
    /// data just in order to cover the traffic of the source").
    pub cover_bytes: usize,
    /// Enable the intersection-attack countermeasure (Section 3.3):
    /// the last random forwarder multicasts to `m` of the `k` zone nodes,
    /// which release the packet on the next packet's arrival.
    pub intersection_defense: bool,
    /// The `m` of the countermeasure: how many zone nodes receive each
    /// packet in the first step.
    pub intersection_m: usize,
    /// Destination confirms receipt and the source retransmits
    /// unconfirmed packets (Section 2.3). Confirmations are control
    /// traffic; retransmissions re-enter the data path.
    pub confirm_and_retransmit: bool,
    /// How long the source waits for a confirmation before resending.
    pub retransmit_timeout_s: f64,
    /// Maximum retransmissions per packet.
    pub max_retransmits: u32,
    /// When a neighbor ages out of the table, bring forward the
    /// retransmit check for every unconfirmed packet instead of waiting
    /// out the full timeout (failure-recovery aid for churny networks).
    /// Off by default to match the calibrated figures.
    #[serde(default)]
    pub reroute_on_neighbor_loss: bool,
}

impl Default for AlertConfig {
    /// The paper's evaluation defaults: `k` chosen so the default scenario
    /// (200 nodes / km^2) yields `H = 5`; notify-and-go on with a
    /// latency-neutral window; intersection defense off (it is evaluated
    /// separately); confirmation/retransmission on.
    fn default() -> Self {
        AlertConfig {
            k: 6.25,
            h_override: None,
            leg_ttl: 10,
            packet_ttl: 64,
            notify_and_go: true,
            notify_t_s: 0.001,
            notify_t0_s: 0.004,
            cover_bytes: 16,
            intersection_defense: false,
            intersection_m: 3,
            confirm_and_retransmit: true,
            retransmit_timeout_s: 0.8,
            max_retransmits: 1,
            reroute_on_neighbor_loss: false,
        }
    }
}

impl AlertConfig {
    /// The number of hierarchical partitions for a given scenario density
    /// and field area: the override if set, else `log2(rho G / k)`.
    pub fn partitions(&self, density: f64, area: f64) -> u32 {
        self.h_override
            .unwrap_or_else(|| alert_geom::required_partitions(density, area, self.k))
    }

    /// Builder-style `H` override.
    pub fn with_h(mut self, h: u32) -> Self {
        self.h_override = Some(h);
        self
    }

    /// Builder-style `k`.
    pub fn with_k(mut self, k: f64) -> Self {
        self.k = k;
        self
    }

    /// Builder-style intersection-defense toggle.
    pub fn with_intersection_defense(mut self, m: usize) -> Self {
        self.intersection_defense = true;
        self.intersection_m = m;
        self
    }

    /// Builder-style notify-and-go toggle.
    pub fn with_notify_and_go(mut self, on: bool) -> Self {
        self.notify_and_go = on;
        self
    }

    /// Builder-style neighbor-loss reroute toggle.
    pub fn with_reroute_on_neighbor_loss(mut self, on: bool) -> Self {
        self.reroute_on_neighbor_loss = on;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_yields_h_5_at_paper_density() {
        let cfg = AlertConfig::default();
        // 200 nodes in 1 km^2, k = 6.25 -> log2(32) = 5 (Section 4: "We
        // set H = 5 to ensure a reasonable number of nodes are in a
        // destination zone").
        assert_eq!(cfg.partitions(200.0 / 1_000_000.0, 1_000_000.0), 5);
    }

    #[test]
    fn override_wins() {
        let cfg = AlertConfig::default().with_h(3);
        assert_eq!(cfg.partitions(200.0 / 1_000_000.0, 1_000_000.0), 3);
    }

    #[test]
    fn k_scales_partitions_inversely() {
        let dense = AlertConfig::default().with_k(2.0);
        let sparse = AlertConfig::default().with_k(50.0);
        let d = 200.0 / 1_000_000.0;
        assert!(dense.partitions(d, 1_000_000.0) > sparse.partitions(d, 1_000_000.0));
    }

    #[test]
    fn intersection_builder() {
        let cfg = AlertConfig::default().with_intersection_defense(4);
        assert!(cfg.intersection_defense);
        assert_eq!(cfg.intersection_m, 4);
    }
}

//! The Section 3.3 coverage model of the intersection-attack
//! countermeasure.
//!
//! When the last RF multicasts to `m` of the `k` zone nodes and those `m`
//! nodes later one-hop-broadcast, the fraction of zone nodes that receive
//! the packet is
//!
//! ```text
//! coverage = m/k + (1 - m/k) * p_c  =  p_c + m * (1 - p_c) / k
//! ```
//!
//! where `p_c` is the fraction of the remaining `k - m` nodes reached by
//! the holders' broadcasts. "To ensure that D receives the packet, p_c
//! should equal 1. p_c = 1 can be achieved by a moderate value of m
//! considering node transmission range. A lower transmission range leads
//! to a higher value of m and vice versa."

/// The coverage fraction of the two-step delivery (both of the paper's
/// equivalent forms, asserted equal in tests).
pub fn coverage_percent(m: usize, k: usize, p_c: f64) -> f64 {
    assert!(k > 0, "zone population must be positive");
    assert!((0.0..=1.0).contains(&p_c), "p_c is a probability");
    let m = m.min(k) as f64;
    let k = k as f64;
    p_c + m * (1.0 - p_c) / k
}

/// A simple geometric model for `p_c`: the probability that a uniformly
/// placed zone node falls within radio range of at least one of `m`
/// uniformly placed holders, for a square zone of side `side_m` and range
/// `range_m`. One holder covers `min(1, pi r^2 / side^2)` of the zone in
/// expectation (ignoring edge effects); `m` independent holders miss a
/// node with probability `(1 - single)^m`.
pub fn estimate_p_c(m: usize, side_m: f64, range_m: f64) -> f64 {
    assert!(side_m > 0.0 && range_m > 0.0);
    let single = (std::f64::consts::PI * range_m * range_m / (side_m * side_m)).min(1.0);
    1.0 - (1.0 - single).powi(m as i32)
}

/// The smallest `m` achieving full expected coverage (`coverage >= 0.999`)
/// for a given zone geometry — the paper's "moderate value of m
/// considering node transmission range".
pub fn minimal_m_for_full_coverage(k: usize, side_m: f64, range_m: f64) -> usize {
    for m in 1..=k {
        let p_c = estimate_p_c(m, side_m, range_m);
        if coverage_percent(m, k, p_c) >= 0.999 {
            return m;
        }
    }
    k
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_paper_forms_agree() {
        // m/k + (1 - m/k) p_c == p_c + m (1 - p_c)/k for all inputs.
        for m in 0..=10usize {
            for k in 1..=10usize {
                if m > k {
                    continue;
                }
                for pc10 in 0..=10 {
                    let p_c = pc10 as f64 / 10.0;
                    let lhs = m as f64 / k as f64 + (1.0 - m as f64 / k as f64) * p_c;
                    let rhs = coverage_percent(m, k, p_c);
                    assert!((lhs - rhs).abs() < 1e-12, "m={m} k={k} p_c={p_c}");
                }
            }
        }
    }

    #[test]
    fn full_pc_means_full_coverage() {
        // "To ensure that D receives the packet, p_c should equal 1."
        for m in 1..6 {
            assert_eq!(coverage_percent(m, 6, 1.0), 1.0);
        }
    }

    #[test]
    fn zero_pc_covers_only_the_holders() {
        assert!((coverage_percent(3, 6, 0.0) - 0.5).abs() < 1e-12);
        assert!((coverage_percent(6, 6, 0.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn coverage_monotone_in_m_and_pc() {
        for k in [4usize, 8, 16] {
            let mut prev = 0.0;
            for m in 0..=k {
                let c = coverage_percent(m, k, 0.5);
                assert!(c >= prev);
                prev = c;
            }
        }
        assert!(coverage_percent(2, 8, 0.9) > coverage_percent(2, 8, 0.3));
    }

    #[test]
    fn lower_range_needs_larger_m() {
        // "A lower transmission range leads to a higher value of m."
        let zone_side = 250.0;
        let m_long = minimal_m_for_full_coverage(10, zone_side, 250.0);
        let m_short = minimal_m_for_full_coverage(10, zone_side, 120.0);
        assert!(
            m_short >= m_long,
            "short range m={m_short} should need at least long range m={m_long}"
        );
    }

    #[test]
    fn paper_default_geometry_needs_small_m() {
        // H = 5 zone (~125 x 250 m -> equal-area side ~177 m) with 250 m
        // range: one holder covers the whole zone; m = 1 or 2 suffices.
        let m = minimal_m_for_full_coverage(6, 177.0, 250.0);
        assert!(
            m <= 2,
            "m = {m} should be moderate for the default geometry"
        );
    }

    #[test]
    fn pc_estimate_saturates() {
        assert_eq!(estimate_p_c(5, 100.0, 200.0), 1.0); // range covers zone
        let p1 = estimate_p_c(1, 500.0, 100.0);
        let p4 = estimate_p_c(4, 500.0, 100.0);
        assert!(p1 < p4 && p4 < 1.0);
    }

    #[test]
    #[should_panic(expected = "zone population")]
    fn rejects_empty_zone() {
        coverage_percent(1, 0, 0.5);
    }
}

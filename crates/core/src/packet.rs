//! The ALERT packet format (paper Fig. 4).
//!
//! One universal layout serves RREQ / RREP / NAK: pseudonyms of the
//! endpoints, the positions of the `H`-th partitioned source and
//! destination zones (the source zone encrypted under the destination's
//! public key), the current temporary destination, the partition counters
//! `h` / `H`, the direction bit, the wrapped session key, the encrypted
//! TTL of "notify and go", and the intersection-attack `Bitmap`.

use alert_crypto::{PkSealed, Pseudonym};
use alert_geom::{Axis, Point, Rect};
use serde::{Deserialize, Serialize};

/// Packet role (the first field of Fig. 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PacketRole {
    /// Request / data from source towards destination.
    Rreq,
    /// Response (here: the destination's delivery confirmation).
    Rrep,
    /// Negative acknowledgement of a lost packet.
    Nak,
}

/// Where the packet currently is in ALERT's routing state machine.
#[derive(Debug, Clone, PartialEq)]
pub enum RoutePhase {
    /// En route to the current temporary destination via greedy
    /// geographic forwarding; the node that cannot find a neighbor closer
    /// to the TD becomes the next random forwarder (Section 2.3).
    ToTd {
        /// The temporary destination coordinate (`L_TD` in Fig. 4).
        td: Point,
        /// The zone the packet is being routed into — the next random
        /// forwarder resumes the hierarchical partition from here, so the
        /// cumulative partition count `h` stays consistent.
        zone: Rect,
    },
    /// Local broadcast inside the destination zone (the `k`-anonymity
    /// delivery step).
    ZoneBroadcast,
    /// Intersection-defense step 1: multicast to `m` holders (Section 3.3).
    /// Carried as a one-hop broadcast whose payload only the listed
    /// holders accept (link-layer multicast); other zone nodes hear the
    /// frame — which is what triggers them to release packets they hold —
    /// but cannot read it.
    ZoneHold {
        /// The pseudonyms of the `m` chosen holders.
        holders: Vec<Pseudonym>,
    },
    /// Intersection-defense step 2: holders release to the whole zone.
    ZoneRelease,
}

/// The ALERT packet header (Fig. 4) plus simulation bookkeeping.
#[derive(Debug, Clone)]
pub struct AlertPacket {
    /// RREQ / RREP / NAK.
    pub role: PacketRole,
    /// Instrumentation id of the application packet this header carries.
    pub packet: alert_sim::PacketId,
    /// The S–D session, used by the source/destination for key lookup.
    pub session: alert_sim::SessionId,
    /// Application sequence number within the session.
    pub seq: u32,
    /// `P_S`: the source's pseudonym (for the confirmation path).
    pub ps: Pseudonym,
    /// `P_D`: the destination's pseudonym.
    pub pd: Pseudonym,
    /// `L_ZS` encrypted under `K_pub^D`: the source zone position, only
    /// decryptable by the destination (Fig. 4 item 2).
    pub zs_sealed: PkSealed,
    /// `L_ZD`: the destination zone position (in the clear — a zone, not
    /// a point, which is the whole idea).
    pub zd: Rect,
    /// `h`: partitions performed so far.
    pub h: u32,
    /// `H`: the maximum number of partitions.
    pub h_max: u32,
    /// The direction bit: the axis the next forwarder splits first.
    pub axis: Axis,
    /// Routing phase (encodes `L_TD` when en route).
    pub phase: RoutePhase,
    /// Remaining hop budget of the current GPSR leg.
    pub leg_ttl: u32,
    /// Remaining total hop budget of this packet attempt. Legs, random-
    /// forwarder recoveries and zone steering all reset `leg_ttl`, so this
    /// global budget is what bounds pathological geometries (two nodes
    /// alternately believing the other is closer to freshly-drawn TDs);
    /// a retransmission starts a fresh attempt.
    pub total_ttl: u32,
    /// Application payload size in bytes (contents are simulated).
    pub payload_bytes: usize,
    /// Intersection-defense bit-alteration tag: the random mask the last
    /// forwarder applied, conceptually carried encrypted as
    /// `(Bitmap)_{K_pub^D}` (Section 3.3).
    pub bitmap_tag: Option<u64>,
}

/// Fixed header overhead on the wire, bytes: role(1) + h(1) + H(1) +
/// axis bit(1) + P_S(8) + P_D(8) + L_ZD(16) + L_TD(8) + leg TTL(1) +
/// wrapped K_s (36) + encrypted TTL (12) + framing (4).
pub const ALERT_FIXED_HEADER_BYTES: usize = 97;

impl AlertPacket {
    /// Total wire size: fixed header + sealed source zone + bitmap +
    /// payload.
    pub fn wire_bytes(&self) -> usize {
        ALERT_FIXED_HEADER_BYTES
            + self.zs_sealed.wire_len()
            + if self.bitmap_tag.is_some() { 12 } else { 0 }
            + self.payload_bytes
    }

    /// Remaining partition budget `H - h`.
    pub fn remaining_partitions(&self) -> u32 {
        self.h_max.saturating_sub(self.h)
    }
}

/// ALERT wire messages: the data/confirmation packets plus the
/// "notify and go" control traffic (Section 2.6).
#[derive(Debug, Clone)]
pub enum AlertMsg {
    /// A routed packet (RREQ data, RREP confirmation, or NAK). Boxed so
    /// the enum stays pointer-sized for the dominant `Cover`/`Notify`
    /// traffic: every queued frame carries an `AlertMsg` through the
    /// future event list, and cover frames outnumber data packets by
    /// orders of magnitude.
    Packet(Box<AlertPacket>),
    /// "Notify" phase: the sender will transmit shortly; neighbors draw a
    /// back-off from `[t, t + t0]` and emit cover traffic.
    Notify {
        /// Minimum back-off, seconds.
        t: f64,
        /// Back-off window length, seconds.
        t0: f64,
    },
    /// A cover packet: random bytes with an encrypted TTL of zero; only a
    /// real next relay could decrypt a valid TTL, everyone else drops it.
    Cover,
}

#[cfg(test)]
mod tests {
    use super::*;
    use alert_crypto::{pk_encrypt, KeyPair};
    use alert_sim::{PacketId, SessionId};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample_packet(payload: usize, bitmap: Option<u64>) -> AlertPacket {
        let mut rng = StdRng::seed_from_u64(5);
        let kp = KeyPair::generate(&mut rng);
        let zs = Rect::new(Point::new(0.0, 0.0), Point::new(125.0, 250.0));
        let sealed = pk_encrypt(&kp.public, &encode_rect(&zs));
        AlertPacket {
            role: PacketRole::Rreq,
            packet: PacketId(0),
            session: SessionId(0),
            seq: 0,
            ps: Pseudonym(1),
            pd: Pseudonym(2),
            zs_sealed: sealed,
            zd: Rect::new(Point::new(875.0, 750.0), Point::new(1000.0, 1000.0)),
            h: 1,
            h_max: 5,
            axis: Axis::Vertical,
            phase: RoutePhase::ToTd {
                td: Point::new(700.0, 700.0),
                zone: Rect::new(Point::new(500.0, 500.0), Point::new(1000.0, 1000.0)),
            },
            leg_ttl: 10,
            total_ttl: 64,
            payload_bytes: payload,
            bitmap_tag: bitmap,
        }
    }

    fn encode_rect(r: &Rect) -> Vec<u8> {
        let mut v = Vec::with_capacity(16);
        for f in [
            r.min.x as f32,
            r.min.y as f32,
            r.max.x as f32,
            r.max.y as f32,
        ] {
            v.extend_from_slice(&f.to_be_bytes());
        }
        v
    }

    #[test]
    fn wire_size_includes_all_fields() {
        let p = sample_packet(512, None);
        // 16-byte rect -> 4 RSA blocks -> 4 + 32 bytes sealed.
        assert_eq!(p.wire_bytes(), ALERT_FIXED_HEADER_BYTES + 36 + 512);
        let with_bitmap = sample_packet(512, Some(7));
        assert_eq!(with_bitmap.wire_bytes(), p.wire_bytes() + 12);
    }

    #[test]
    fn header_dominated_by_crypto_fields_not_positions() {
        // Anonymity costs bytes: the header must stay well under the
        // payload for 512-byte packets (overhead < 30%).
        let p = sample_packet(512, Some(1));
        let overhead = p.wire_bytes() - 512;
        assert!(overhead < 160, "header overhead {overhead} too large");
    }

    #[test]
    fn remaining_partitions_saturates() {
        let mut p = sample_packet(0, None);
        p.h = 7; // more than h_max (can't happen in routing, but saturate)
        assert_eq!(p.remaining_partitions(), 0);
    }
}

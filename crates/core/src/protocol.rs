//! The ALERT routing protocol (paper Section 2).
//!
//! Per packet, each data holder:
//! 1. checks whether it is inside the destination zone `Z_D`; if so it
//!    performs the `k`-anonymity zone delivery (broadcast, or the
//!    two-step intersection-defense multicast of Section 3.3);
//! 2. otherwise it resumes the hierarchical zone partition from its
//!    working zone until it is separated from `Z_D`, draws a random
//!    *temporary destination* (TD) in the half where `Z_D` lies, and
//!    greedily forwards towards the TD; the node that cannot find a
//!    neighbor closer to the TD becomes the next *random forwarder* (RF)
//!    and repeats step 2.
//!
//! Source anonymity is reinforced by "notify and go" (Section 2.6);
//! reliability by destination confirmations, retransmission, and NAKs
//! (Sections 2.3, 2.5).

use crate::config::AlertConfig;
use crate::packet::{AlertMsg, AlertPacket, PacketRole, RoutePhase};
use alert_crypto::{pk_decrypt, pk_encrypt, PkSealed, Pseudonym, SymmetricKey};
use alert_geom::{destination_zone, separate, Axis, Point, Rect, SeparateOutcome};
use alert_protocols::forwarding::{greedy_next_hop, greedy_next_hop_traced};
use alert_sim::{
    Api, DataRequest, Frame, PacketId, ProtocolNode, SessionId, TimerToken, TrafficClass,
};
use rand::Rng;
use std::collections::{HashMap, HashSet};

/// Deferred actions keyed by timer token.
#[derive(Debug, Clone)]
enum Delayed {
    /// "Go" phase of notify-and-go: route the packet now.
    SendPacket(Box<AlertPacket>),
    /// Emit one cover packet (a notified neighbor).
    SendCover,
    /// Check whether a sent packet was confirmed; retransmit otherwise.
    RetransmitCheck(PacketId),
}

/// A packet held under the intersection defense, waiting for the next
/// packet's arrival before release (Section 3.3).
#[derive(Debug, Clone)]
struct HeldPacket {
    packet: AlertPacket,
    held_since_seq: u32,
}

/// Record of one zone-delivery round, kept for the intersection-attack
/// analysis (who was in the *intended* recipient set of each packet).
#[derive(Debug, Clone)]
pub struct ZoneDeliveryRecord {
    /// Session the packet belongs to.
    pub session: SessionId,
    /// Application sequence number.
    pub seq: u32,
    /// Time of the zone delivery.
    pub time: f64,
    /// The destination zone the delivery targeted.
    pub zd: Rect,
    /// Intended recipients: the `m` holders under the defense, or `None`
    /// for a plain zone broadcast (every zone member receives).
    pub holders: Option<Vec<Pseudonym>>,
}

/// Per-node ALERT instance.
pub struct Alert {
    /// Protocol parameters.
    pub cfg: AlertConfig,
    /// Session keys this node established as a source.
    src_keys: HashMap<SessionId, SymmetricKey>,
    /// Sessions this node has already paid the per-session public-key
    /// handshake for, as a destination.
    dst_sessions: HashSet<SessionId>,
    /// Unconfirmed packets sent by this node as a source.
    pending_confirm: HashMap<PacketId, (AlertPacket, u32)>,
    /// Deferred actions.
    delayed: HashMap<TimerToken, Delayed>,
    next_token: TimerToken,
    /// Packets already delivered/absorbed here (dedup of zone broadcasts).
    absorbed: HashSet<PacketId>,
    /// Intersection-defense holder state.
    held: Vec<HeldPacket>,
    /// Highest sequence seen per session (as destination), for NAKs.
    highest_seq: HashMap<SessionId, u32>,
    /// Zone broadcasts this node has already relayed (scoped-flood dedup).
    relayed: HashSet<PacketId>,
    /// Zone-delivery rounds this node initiated as last RF (analysis).
    pub zone_deliveries: Vec<ZoneDeliveryRecord>,
}

impl Alert {
    /// Creates a node instance with the given parameters.
    pub fn new(cfg: AlertConfig) -> Self {
        Alert {
            cfg,
            src_keys: HashMap::new(),
            dst_sessions: HashSet::new(),
            pending_confirm: HashMap::new(),
            delayed: HashMap::new(),
            next_token: 64,
            absorbed: HashSet::new(),
            held: Vec::new(),
            highest_seq: HashMap::new(),
            relayed: HashSet::new(),
            zone_deliveries: Vec::new(),
        }
    }

    fn token(&mut self) -> TimerToken {
        let t = self.next_token;
        self.next_token += 1;
        t
    }

    fn defer(&mut self, api: &mut Api<'_, AlertMsg>, delay_s: f64, action: Delayed) {
        let token = self.token();
        self.delayed.insert(token, action);
        api.set_timer(delay_s, token);
    }

    /// Serializes a zone rectangle for the `L_ZS` public-key sealing.
    fn encode_rect(r: &Rect) -> Vec<u8> {
        let mut v = Vec::with_capacity(16);
        for f in [
            r.min.x as f32,
            r.min.y as f32,
            r.max.x as f32,
            r.max.y as f32,
        ] {
            v.extend_from_slice(&f.to_be_bytes());
        }
        v
    }

    fn decode_rect(bytes: &[u8]) -> Option<Rect> {
        if bytes.len() < 16 {
            return None;
        }
        let f = |i: usize| {
            f64::from(f32::from_be_bytes(
                bytes[i * 4..i * 4 + 4].try_into().expect("16 bytes"),
            ))
        };
        Some(Rect::new(Point::new(f(0), f(1)), Point::new(f(2), f(3))))
    }

    /// Traffic class and hop accounting are data-plane only for RREQs;
    /// RREP/NAK travel as control traffic.
    fn class_of(role: PacketRole) -> TrafficClass {
        match role {
            PacketRole::Rreq => TrafficClass::Data,
            _ => TrafficClass::Control,
        }
    }

    fn mark_tx(api: &mut Api<'_, AlertMsg>, pkt: &AlertPacket) {
        if pkt.role == PacketRole::Rreq {
            api.mark_hop(pkt.packet);
        }
    }

    /// Step 2 of the algorithm: partition until separated from `Z_D`,
    /// draw a TD, and start a greedy leg. Runs at the source and at every
    /// random forwarder.
    fn route_step(
        &mut self,
        api: &mut Api<'_, AlertMsg>,
        mut pkt: AlertPacket,
        working_zone: Rect,
    ) {
        let me = api.my_pos();
        if pkt.zd.contains(me) {
            self.zone_delivery(api, pkt);
            return;
        }
        let budget = pkt.remaining_partitions().max(1);
        match separate(&working_zone, me, &pkt.zd, pkt.axis, budget) {
            SeparateOutcome::InDestinationZone => {
                // Partition budget exhausted or co-located at zone
                // resolution: deliver from here (the broadcast may still
                // reach the zone if it is adjacent).
                self.zone_delivery(api, pkt);
            }
            SeparateOutcome::Separated(sep) => {
                let td = sep.td_zone.random_point(api.rng());
                api.trace_zone_partition(pkt.packet, sep.splits, td);
                pkt.h += sep.splits;
                pkt.axis = sep.next_axis;
                pkt.leg_ttl = self.cfg.leg_ttl;
                pkt.phase = RoutePhase::ToTd {
                    td,
                    zone: sep.td_zone,
                };
                self.forward_leg(api, pkt);
            }
        }
    }

    /// One greedy hop towards the current TD. The relay that cannot make
    /// progress is, by definition, the next random forwarder — but that
    /// decision is taken at *receive* time; here we only transmit.
    fn forward_leg(&mut self, api: &mut Api<'_, AlertMsg>, mut pkt: AlertPacket) {
        let RoutePhase::ToTd { td, .. } = pkt.phase else {
            debug_assert!(false, "forward_leg outside ToTd");
            return;
        };
        if pkt.leg_ttl == 0 {
            // Leg budget exhausted (a long zigzag towards a distant TD):
            // recover by re-partitioning from here instead of dropping.
            // This consumes partition budget, so it terminates.
            api.mark_packet_drop("leg_ttl_exhausted", pkt.packet);
            let zone = match pkt.phase {
                RoutePhase::ToTd { zone, .. } => zone,
                _ => api.field(),
            };
            if pkt.remaining_partitions() == 0 {
                pkt.h += 1; // spend budget so repeated recovery terminates
                self.zone_delivery(api, pkt);
            } else {
                pkt.h += 1;
                self.route_step(api, pkt, zone);
            }
            return;
        }
        if pkt.total_ttl == 0 {
            api.mark_packet_drop("packet_ttl_exhausted", pkt.packet);
            return;
        }
        pkt.total_ttl -= 1;
        pkt.leg_ttl -= 1;
        match greedy_next_hop_traced(api, td, Some(pkt.packet)) {
            Some(n) => {
                let wire = pkt.wire_bytes();
                let class = Self::class_of(pkt.role);
                let id = pkt.packet;
                Self::mark_tx(api, &pkt);
                api.send_unicast(
                    n.pseudonym,
                    AlertMsg::Packet(Box::new(pkt)),
                    wire,
                    class,
                    Some(id),
                );
            }
            None => {
                // We are already the closest node to this TD: act as the
                // random forwarder immediately and re-partition.
                if pkt.role == PacketRole::Rreq {
                    api.mark_random_forwarder(pkt.packet);
                }
                let zone = match pkt.phase {
                    RoutePhase::ToTd { zone, .. } => zone,
                    _ => api.field(),
                };
                if pkt.remaining_partitions() == 0 {
                    self.zone_delivery(api, pkt);
                } else {
                    self.route_step(api, pkt, zone);
                }
            }
        }
    }

    /// The `k`-anonymity delivery inside `Z_D` (or the two-step
    /// intersection defense of Section 3.3), performed by the last RF.
    fn zone_delivery(&mut self, api: &mut Api<'_, AlertMsg>, mut pkt: AlertPacket) {
        let class = Self::class_of(pkt.role);
        let id = pkt.packet;
        // The broadcast step presumes the broadcaster resides in Z_D and
        // that its one-hop broadcast reaches "the k nodes in Z_D"
        // (Section 2.3). If this node is outside the zone (partition
        // budget exhausted early) or sits at a zone corner whose far side
        // exceeds radio range, push the packet greedily towards the zone
        // centre first; greedy progress is monotone, so this terminates.
        let me = api.my_pos();
        let covers_zone =
            pkt.zd.contains(me) && pkt.zd.max_corner_distance(me) <= api.config().mac.range_m;
        if !covers_zone {
            let center = pkt.zd.center();
            if greedy_next_hop(me, center, api.neighbors()).is_some() {
                pkt.leg_ttl = self.cfg.leg_ttl;
                pkt.phase = RoutePhase::ToTd {
                    td: center,
                    zone: pkt.zd,
                };
                self.forward_leg(api, pkt);
                return;
            }
            // No progress possible: best-effort broadcast from here.
        }
        if self.cfg.intersection_defense && pkt.role == PacketRole::Rreq {
            // Choose m holders among zone-resident neighbors.
            let zd = pkt.zd;
            let mut candidates: Vec<Pseudonym> = api
                .neighbors()
                .iter()
                .filter(|n| zd.contains(n.position))
                .map(|n| n.pseudonym)
                .collect();
            if !candidates.is_empty() {
                // Deterministic partial Fisher-Yates sample of size m.
                let m = self.cfg.intersection_m.min(candidates.len());
                for i in 0..m {
                    let j = api.rng().gen_range(i..candidates.len());
                    candidates.swap(i, j);
                }
                candidates.truncate(m);
                self.zone_deliveries.push(ZoneDeliveryRecord {
                    session: pkt.session,
                    seq: pkt.seq,
                    time: api.now(),
                    zd: pkt.zd,
                    holders: Some(candidates.clone()),
                });
                pkt.phase = RoutePhase::ZoneHold {
                    holders: candidates,
                };
                let wire = pkt.wire_bytes();
                Self::mark_tx(api, &pkt);
                // The defense cannot hide a packet from its own carrier:
                // a destination acting as the last RF accepts it locally.
                if pkt.pd == api.my_pseudonym() || api.is_true_destination(pkt.packet) {
                    self.absorb(api, &pkt);
                }
                api.send_broadcast(AlertMsg::Packet(Box::new(pkt)), wire, class, Some(id));
                return;
            }
            // No zone neighbors to hold: fall through to plain broadcast.
        }
        if pkt.role == PacketRole::Rreq {
            self.zone_deliveries.push(ZoneDeliveryRecord {
                session: pkt.session,
                seq: pkt.seq,
                time: api.now(),
                zd: pkt.zd,
                holders: None,
            });
        }
        pkt.phase = RoutePhase::ZoneBroadcast;
        let wire = pkt.wire_bytes();
        Self::mark_tx(api, &pkt);
        // A broadcaster does not hear its own transmission; if this last
        // RF happens to be the destination (or the source of a reply), it
        // already possesses the packet and accepts it locally.
        let mine = pkt.pd == api.my_pseudonym()
            || (pkt.role == PacketRole::Rreq && api.is_true_destination(pkt.packet));
        if mine {
            self.absorb(api, &pkt);
        }
        api.send_broadcast(AlertMsg::Packet(Box::new(pkt)), wire, class, Some(id));
    }

    /// Final acceptance at this node: decrypt, record delivery, confirm.
    fn absorb(&mut self, api: &mut Api<'_, AlertMsg>, pkt: &AlertPacket) {
        if !self.absorbed.insert(pkt.packet) {
            return;
        }
        match pkt.role {
            PacketRole::Rreq => {
                // Symmetric decryption of the payload; the per-session
                // public-key handshake (unwrapping K_s, decrypting L_ZS)
                // is charged once per session.
                api.charge_symmetric(1);
                if pkt.bitmap_tag.is_some() {
                    // Recover the altered bits via the encrypted Bitmap.
                    api.charge_symmetric(1);
                }
                api.mark_delivered(pkt.packet);
                // The per-session handshake (unwrapping K_s and L_ZS with
                // the private key) happens once and is not part of any
                // individual packet's forwarding latency.
                let first_of_session = self.dst_sessions.insert(pkt.session);
                if first_of_session {
                    api.charge_pk_decrypt(1);
                }
                // NAK any gap in the sequence numbers (Section 2.5).
                let highest = self.highest_seq.entry(pkt.session).or_insert(pkt.seq);
                let gap = pkt.seq > *highest + 1;
                if pkt.seq > *highest {
                    *highest = pkt.seq;
                }
                if self.cfg.confirm_and_retransmit {
                    self.send_reverse(api, pkt, PacketRole::Rrep);
                    if gap {
                        self.send_reverse(api, pkt, PacketRole::Nak);
                    }
                }
            }
            PacketRole::Rrep => {
                // Confirmation reached the source: stop the retransmit
                // clock for this packet.
                self.pending_confirm.remove(&pkt.packet);
            }
            PacketRole::Nak => {
                // A loss report: retransmit the referenced packet if it is
                // still pending (its confirm timer will also fire, so this
                // is an accelerator, not the only path).
                if let Some((stored, _)) = self.pending_confirm.get(&pkt.packet) {
                    let mut fresh = stored.clone();
                    fresh.total_ttl = self.cfg.packet_ttl;
                    fresh.h = 0;
                    let field = api.field();
                    self.route_step(api, fresh, field);
                }
            }
        }
    }

    /// Routes a confirmation or NAK back towards the source's zone `Z_S`
    /// (decrypted from the packet), using the same anonymous machinery in
    /// reverse.
    fn send_reverse(&mut self, api: &mut Api<'_, AlertMsg>, pkt: &AlertPacket, role: PacketRole) {
        let keys = api.my_keys();
        let Some(zs_bytes) = pk_decrypt(&keys.private, &pkt.zs_sealed) else {
            return;
        };
        let Some(zs) = Self::decode_rect(&zs_bytes) else {
            return;
        };
        let reply = AlertPacket {
            role,
            packet: pkt.packet,
            session: pkt.session,
            seq: pkt.seq,
            ps: api.my_pseudonym(),
            pd: pkt.ps,
            zs_sealed: PkSealed {
                plain_len: 0,
                blocks: Vec::new(),
            },
            zd: zs,
            h: 0,
            h_max: pkt.h_max,
            axis: if api.rng().gen_bool(0.5) {
                Axis::Vertical
            } else {
                Axis::Horizontal
            },
            phase: RoutePhase::ZoneBroadcast, // set properly by route_step
            leg_ttl: self.cfg.leg_ttl,
            total_ttl: self.cfg.packet_ttl,
            payload_bytes: 16,
            bitmap_tag: None,
        };
        let field = api.field();
        self.route_step(api, reply, field);
    }

    /// Handles a routed packet arriving at this node.
    fn on_packet(&mut self, api: &mut Api<'_, AlertMsg>, pkt: AlertPacket) {
        let me = api.my_pos();
        let mine = pkt.pd == api.my_pseudonym()
            || (pkt.role == PacketRole::Rreq && api.is_true_destination(pkt.packet));
        match &pkt.phase {
            RoutePhase::ZoneBroadcast => {
                // A newer zone transmission releases held packets first,
                // so a destination that is also a holder still triggers
                // the two-step release.
                self.release_held(api, pkt.session, pkt.seq);
                // k-anonymity delivery: every zone node receives; only the
                // true destination can make sense of the payload.
                if mine {
                    self.absorb(api, &pkt);
                    return;
                }
                // Zone-edge handover: P_D is already in the packet header
                // (Fig. 4), so a zone member that currently hears the
                // destination as a neighbor *outside* Z_D (it drifted away
                // since the stale location lookup) relays the packet one
                // hop to it. This is the mechanism behind the paper's
                // observation that the final local broadcast "increases
                // the possibility of packet delivery when the destination
                // is not too far away" (Fig. 16); it costs hops only in
                // the drift case and reveals nothing beyond the hello
                // exchange already did.
                let handover =
                    alert_protocols::forwarding::neighbor_by_pseudonym(api.neighbors(), pkt.pd);
                if let Some(d) = handover {
                    if !pkt.zd.contains(d.position) && self.relayed.insert(pkt.packet) {
                        let wire = pkt.wire_bytes();
                        let class = Self::class_of(pkt.role);
                        let id = pkt.packet;
                        Self::mark_tx(api, &pkt);
                        api.send_unicast(
                            d.pseudonym,
                            AlertMsg::Packet(Box::new(pkt.clone())),
                            wire,
                            class,
                            Some(id),
                        );
                    }
                }
                // Scoped relay: when the zone is too large for any single
                // broadcast to cover (half-diagonal beyond radio range),
                // zone residents relay the broadcast once so all k nodes
                // receive it ("the data are broadcasted to k nodes in
                // Z_D").
                let half_diag = pkt.zd.min.distance(pkt.zd.max) * 0.5;
                if pkt.zd.contains(me)
                    && half_diag > api.config().mac.range_m
                    && self.relayed.insert(pkt.packet)
                {
                    let wire = pkt.wire_bytes();
                    let class = Self::class_of(pkt.role);
                    let id = pkt.packet;
                    Self::mark_tx(api, &pkt);
                    api.send_broadcast(AlertMsg::Packet(Box::new(pkt)), wire, class, Some(id));
                }
            }
            RoutePhase::ZoneHold { holders } => {
                let i_hold = holders.contains(&api.my_pseudonym());
                // Hearing a newer hold-round releases older held packets.
                self.release_held(api, pkt.session, pkt.seq);
                if i_hold {
                    self.held.push(HeldPacket {
                        held_since_seq: pkt.seq,
                        packet: pkt,
                    });
                }
                // Non-holders cannot read the multicast (link-layer
                // addressing); even the true destination waits for the
                // release step — that is the entire point of Section 3.3.
            }
            RoutePhase::ZoneRelease => {
                if mine {
                    self.absorb(api, &pkt);
                }
            }
            RoutePhase::ToTd { td, zone } => {
                if mine && pkt.role != PacketRole::Rreq {
                    // Control replies can terminate en route at their
                    // target (the source recognizes its pseudonym).
                    self.absorb(api, &pkt);
                    return;
                }
                let (td, zone) = (*td, *zone);
                if pkt.zd.contains(me) {
                    // Entered the destination zone: this node is the last
                    // RF — unless this is already an in-zone steering leg
                    // towards the zone centre (td == centre), whose relays
                    // are plain forwarders, not random forwarders.
                    let steering = td == pkt.zd.center();
                    if pkt.role == PacketRole::Rreq && !steering {
                        api.mark_random_forwarder(pkt.packet);
                    }
                    self.zone_delivery(api, pkt);
                    return;
                }
                if greedy_next_hop(me, td, api.neighbors()).is_none() {
                    // No neighbor closer to the TD: this node is the RF.
                    if pkt.role == PacketRole::Rreq {
                        api.mark_random_forwarder(pkt.packet);
                    }
                    if pkt.remaining_partitions() == 0 {
                        self.zone_delivery(api, pkt);
                    } else {
                        self.route_step(api, pkt, zone);
                    }
                } else {
                    self.forward_leg(api, pkt);
                }
            }
        }
    }

    /// Broadcasts held packets after observing a newer zone transmission
    /// (step 2 of the intersection defense).
    fn release_held(&mut self, api: &mut Api<'_, AlertMsg>, session: SessionId, newer_seq: u32) {
        if self.held.is_empty() {
            return;
        }
        let to_release: Vec<HeldPacket> = {
            let (rel, keep): (Vec<_>, Vec<_>) = self
                .held
                .drain(..)
                .partition(|h| h.packet.session == session && h.held_since_seq < newer_seq);
            self.held = keep;
            rel
        };
        for mut h in to_release {
            // Alter bits and record them in the encrypted Bitmap so the
            // on-air ciphertext differs from the first step's (Section 3.3).
            h.packet.bitmap_tag = Some(api.rng().gen());
            api.charge_symmetric(1);
            h.packet.phase = RoutePhase::ZoneRelease;
            let wire = h.packet.wire_bytes();
            let class = Self::class_of(h.packet.role);
            let id = h.packet.packet;
            Self::mark_tx(api, &h.packet);
            api.send_broadcast(AlertMsg::Packet(Box::new(h.packet)), wire, class, Some(id));
        }
    }
}

impl ProtocolNode for Alert {
    type Msg = AlertMsg;

    fn name() -> &'static str {
        "ALERT"
    }

    fn on_data_request(&mut self, api: &mut Api<'_, Self::Msg>, req: &DataRequest) {
        let Some(info) = api.lookup(req.dst) else {
            api.mark_packet_drop("location_lookup_failed", req.packet);
            return;
        };
        let field = api.field();
        let density = api.config().density();
        let h_max = self.cfg.partitions(density, field.area());
        let first_axis = if api.rng().gen_bool(0.5) {
            Axis::Vertical
        } else {
            Axis::Horizontal
        };
        let zd = destination_zone(&field, field.clamp(info.position), h_max, first_axis);
        let zs = destination_zone(&field, field.clamp(api.my_pos()), h_max, first_axis);

        // Session key establishment: one public-key wrap per session; the
        // data itself travels under the symmetric key (Section 2.5).
        let session_is_new = !self.src_keys.contains_key(&req.session);
        if session_is_new {
            let key = SymmetricKey::random(api.rng());
            self.src_keys.insert(req.session, key);
            api.charge_pk_encrypt(1);
        }
        api.charge_symmetric(1); // payload encryption under K_s

        let zs_sealed = pk_encrypt(&info.public_key, &Self::encode_rect(&zs));
        let pkt = AlertPacket {
            role: PacketRole::Rreq,
            packet: req.packet,
            session: req.session,
            seq: req.seq,
            ps: api.my_pseudonym(),
            pd: info.pseudonym,
            zs_sealed,
            zd,
            h: 0,
            h_max,
            axis: first_axis,
            phase: RoutePhase::ZoneBroadcast, // set properly by route_step
            leg_ttl: self.cfg.leg_ttl,
            total_ttl: self.cfg.packet_ttl,
            payload_bytes: req.bytes,
            bitmap_tag: None,
        };

        if self.cfg.confirm_and_retransmit {
            self.pending_confirm.insert(req.packet, (pkt.clone(), 0));
            self.defer(
                api,
                self.cfg.retransmit_timeout_s,
                Delayed::RetransmitCheck(req.packet),
            );
        }

        if self.cfg.notify_and_go {
            // "Notify": tell the neighborhood a transmission is imminent.
            api.send_broadcast(
                AlertMsg::Notify {
                    t: self.cfg.notify_t_s,
                    t0: self.cfg.notify_t0_s,
                },
                8,
                TrafficClass::Control,
                None,
            );
            // "Go": the source waits its own random back-off like everyone.
            let backoff = self.cfg.notify_t_s + api.rng().gen_range(0.0..self.cfg.notify_t0_s);
            self.defer(api, backoff, Delayed::SendPacket(Box::new(pkt)));
        } else {
            self.route_step(api, pkt, field);
        }
    }

    fn on_frame(&mut self, api: &mut Api<'_, Self::Msg>, frame: Frame<Self::Msg>) {
        match frame.msg {
            AlertMsg::Packet(pkt) => self.on_packet(api, *pkt),
            AlertMsg::Notify { t, t0 } => {
                // Participate in the camouflage: schedule one cover packet.
                let backoff = t + api.rng().gen_range(0.0..t0.max(1e-6));
                self.defer(api, backoff, Delayed::SendCover);
            }
            AlertMsg::Cover => {
                // Cannot decrypt a valid TTL with our private key: drop.
                // (Cost of the attempted decryption is sub-millisecond and
                // charged as a hash-class operation.)
                api.charge_hash(1);
            }
        }
    }

    fn on_timer(&mut self, api: &mut Api<'_, Self::Msg>, token: TimerToken) {
        match self.delayed.remove(&token) {
            Some(Delayed::SendPacket(pkt)) => {
                let field = api.field();
                self.route_step(api, *pkt, field);
            }
            Some(Delayed::SendCover) => {
                api.send_broadcast(
                    AlertMsg::Cover,
                    self.cfg.cover_bytes,
                    TrafficClass::Cover,
                    None,
                );
            }
            Some(Delayed::RetransmitCheck(id)) => {
                if let Some((mut pkt, retries)) = self.pending_confirm.get(&id).cloned() {
                    if retries < self.cfg.max_retransmits {
                        self.pending_confirm.insert(id, (pkt.clone(), retries + 1));
                        pkt.total_ttl = self.cfg.packet_ttl;
                        pkt.h = 0;
                        let field = api.field();
                        self.route_step(api, pkt, field);
                        self.defer(
                            api,
                            self.cfg.retransmit_timeout_s,
                            Delayed::RetransmitCheck(id),
                        );
                    } else {
                        self.pending_confirm.remove(&id);
                    }
                }
            }
            None => {}
        }
    }

    fn on_neighbor_lost(
        &mut self,
        api: &mut Api<'_, Self::Msg>,
        _neighbor: &alert_sim::NeighborEntry,
    ) {
        if !self.cfg.reroute_on_neighbor_loss || !self.cfg.confirm_and_retransmit {
            return;
        }
        // A vanished neighbor may have been carrying one of our
        // unconfirmed packets; bring the retransmit checks forward so the
        // source re-routes around the hole instead of waiting out the
        // full confirmation timeout. The check itself still consults
        // `pending_confirm`, so already-confirmed packets are unaffected.
        let mut pending: Vec<PacketId> = self.pending_confirm.keys().copied().collect();
        pending.sort_by_key(|p| p.0);
        for id in pending {
            self.defer(api, 0.0, Delayed::RetransmitCheck(id));
        }
    }
}

/// Factory for [`alert_sim::World::new`] with a shared configuration.
pub fn alert_factory(
    cfg: AlertConfig,
) -> impl FnMut(alert_sim::NodeId, &alert_sim::ScenarioConfig) -> Alert {
    move |_, _| Alert::new(cfg)
}

//! Behavioural tests of the ALERT protocol against the paper's claims.

use alert_core::{Alert, AlertConfig};
use alert_sim::{LocationPolicy, ScenarioConfig, World};

fn scenario(nodes: usize, duration: f64) -> ScenarioConfig {
    let mut cfg = ScenarioConfig::default()
        .with_nodes(nodes)
        .with_duration(duration);
    cfg.traffic.pairs = 5;
    cfg
}

fn run_alert(cfg: ScenarioConfig, acfg: AlertConfig, seed: u64) -> World<Alert> {
    let mut w = World::new(cfg, seed, move |_, _| Alert::new(acfg));
    w.run();
    w
}

#[test]
fn delivers_on_dense_network() {
    let w = run_alert(scenario(200, 40.0), AlertConfig::default(), 1);
    let rate = w.metrics().delivery_rate();
    assert!(rate > 0.85, "ALERT dense delivery {rate}");
}

#[test]
fn latency_in_the_paper_regime() {
    let w = run_alert(scenario(200, 40.0), AlertConfig::default(), 2);
    // The paper reports ~11-12 ms: symmetric crypto + a few extra hops +
    // the notify-and-go back-off. The typical (median) packet must be in
    // the low tens of ms; the mean may include a few retransmission
    // rescues but must stay far below the ALARM/AO2P regime (~1 s).
    let mut lats: Vec<f64> = w
        .metrics()
        .packets
        .iter()
        .filter_map(|p| p.latency())
        .collect();
    lats.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let median = lats[lats.len() / 2];
    assert!(
        median > 0.004 && median < 0.08,
        "ALERT median latency {median}s outside the paper's regime"
    );
    let mean = w.metrics().mean_latency().unwrap();
    assert!(mean < 0.2, "ALERT mean latency {mean}s too high");
}

#[test]
fn uses_random_forwarders() {
    let w = run_alert(scenario(200, 40.0), AlertConfig::default(), 3);
    let rf = w.metrics().mean_random_forwarders();
    assert!(rf >= 0.5, "expected RFs on most paths, got {rf}");
    assert!(rf < 8.0, "RF count {rf} exceeds the H=5 regime");
}

#[test]
fn rf_count_grows_with_partitions() {
    // Fig. 11: the number of RFs grows roughly linearly with H.
    let mut means = Vec::new();
    for h in [2u32, 4, 6] {
        let mut acc = 0.0;
        for seed in 0..4 {
            let w = run_alert(
                scenario(200, 30.0),
                AlertConfig::default().with_h(h),
                100 + seed,
            );
            acc += w.metrics().mean_random_forwarders();
        }
        means.push(acc / 4.0);
    }
    assert!(
        means[0] < means[1] && means[1] < means[2],
        "RFs not increasing with H: {means:?}"
    );
}

#[test]
fn more_participants_than_gpsr() {
    // Fig. 10: ALERT's randomized routes recruit many more distinct nodes
    // per S-D pair than GPSR's repeated shortest path.
    let cfg = scenario(200, 60.0);
    let alert_w = run_alert(cfg.clone(), AlertConfig::default(), 4);
    let mut gpsr_w = World::new(cfg, 4, |_, _| alert_protocols::Gpsr::default());
    gpsr_w.run();
    let a = *alert_w
        .metrics()
        .mean_cumulative_participants()
        .last()
        .unwrap();
    let g = *gpsr_w
        .metrics()
        .mean_cumulative_participants()
        .last()
        .unwrap();
    assert!(
        a > g * 1.5,
        "ALERT participants {a} not clearly above GPSR {g}"
    );
}

#[test]
fn hops_slightly_above_gpsr() {
    // Fig. 15a: ALERT pays roughly one extra hop per packet vs GPSR.
    let cfg = scenario(200, 60.0);
    let alert_w = run_alert(cfg.clone(), AlertConfig::default(), 5);
    let mut gpsr_w = World::new(cfg, 5, |_, _| alert_protocols::Gpsr::default());
    gpsr_w.run();
    let a = alert_w.metrics().hops_per_packet();
    let g = gpsr_w.metrics().hops_per_packet();
    assert!(a > g, "ALERT hops {a} must exceed GPSR {g}");
    assert!(a < g + 5.0, "ALERT hops {a} too far above GPSR {g}");
}

#[test]
fn symmetric_crypto_only_per_packet() {
    let w = run_alert(scenario(100, 30.0), AlertConfig::default(), 6);
    let c = w.metrics().crypto;
    assert!(c.symmetric > 0, "symmetric data path missing");
    // Public-key work is per *session*, not per packet: with 5 sessions
    // and ~14 packets each, pk ops must be a small fraction of packets.
    let pk = c.pk_encrypt + c.pk_decrypt;
    assert!(
        pk as usize <= 2 * 5 + 4,
        "per-session pk ops leaked into the per-packet path: {pk}"
    );
}

#[test]
fn notify_and_go_produces_cover_traffic() {
    let with = run_alert(scenario(100, 20.0), AlertConfig::default(), 7);
    let without = run_alert(
        scenario(100, 20.0),
        AlertConfig::default().with_notify_and_go(false),
        7,
    );
    assert!(with.metrics().cover_frames > 0, "no cover packets seen");
    assert_eq!(without.metrics().cover_frames, 0);
    // Cover traffic scales with the source's neighborhood size eta.
    let per_packet = with.metrics().cover_frames as f64 / with.metrics().packets_sent() as f64;
    assert!(
        per_packet > 2.0,
        "cover packets per data packet {per_packet} too low for eta-anonymity"
    );
}

#[test]
fn notify_and_go_costs_little_latency() {
    let with = run_alert(scenario(200, 30.0), AlertConfig::default(), 8);
    let without = run_alert(
        scenario(200, 30.0),
        AlertConfig::default().with_notify_and_go(false),
        8,
    );
    let (lw, lo) = (
        with.metrics().mean_latency().unwrap(),
        without.metrics().mean_latency().unwrap(),
    );
    assert!(
        lw - lo < 0.02,
        "notify-and-go added {}s, should be a few ms",
        lw - lo
    );
}

#[test]
fn intersection_defense_delays_but_delivers() {
    let mut cfg = scenario(200, 60.0);
    cfg.traffic.interval_s = 2.0;
    let defended = run_alert(
        cfg.clone(),
        AlertConfig::default().with_intersection_defense(3),
        9,
    );
    let rate = defended.metrics().delivery_rate();
    // Held packets are released by the *next* packet, so the session's
    // last packet may stay held: high but sub-perfect delivery.
    assert!(rate > 0.5, "defended delivery collapsed: {rate}");
    let lat = defended.metrics().mean_latency().unwrap();
    // Deliveries wait for the next packet (~2 s interval): the documented
    // latency cost of the countermeasure (Section 3.3).
    assert!(
        lat > 0.5,
        "defense should delay delivery to the next packet arrival, got {lat}s"
    );
}

#[test]
fn zone_deliveries_are_recorded_for_analysis() {
    let w = run_alert(scenario(200, 30.0), AlertConfig::default(), 10);
    let total: usize = (0..200)
        .map(|i| w.protocol(alert_sim::NodeId(i)).zone_deliveries.len())
        .sum();
    assert!(
        total > 0,
        "no zone-delivery records for the adversary analysis"
    );
}

#[test]
fn works_without_destination_update() {
    let mut cfg = scenario(200, 40.0).with_location(LocationPolicy::SessionStart);
    cfg.speed = 4.0;
    let w = run_alert(cfg, AlertConfig::default(), 11);
    // Stale destination positions cost delivery, but the final zone
    // broadcast keeps ALERT working (the paper's Fig. 16 observation).
    let rate = w.metrics().delivery_rate();
    assert!(rate > 0.5, "no-update delivery collapsed: {rate}");
}

#[test]
fn deterministic_per_seed() {
    let a = run_alert(scenario(100, 20.0), AlertConfig::default(), 12);
    let b = run_alert(scenario(100, 20.0), AlertConfig::default(), 12);
    assert_eq!(a.metrics().delivery_rate(), b.metrics().delivery_rate());
    assert_eq!(a.metrics().mean_latency(), b.metrics().mean_latency());
    assert_eq!(a.metrics().hops_per_packet(), b.metrics().hops_per_packet());
    assert_eq!(
        a.metrics().mean_random_forwarders(),
        b.metrics().mean_random_forwarders()
    );
}

#[test]
fn routes_vary_between_packets_of_one_pair() {
    // Route anonymity: the participant set must keep growing over a
    // session (new RFs recruited per packet), unlike GPSR.
    let w = run_alert(scenario(200, 60.0), AlertConfig::default(), 13);
    let curve = w.metrics().mean_cumulative_participants();
    let (first, last) = (curve[0], *curve.last().unwrap());
    assert!(
        last > first * 1.8,
        "participant union stopped growing: first {first}, last {last}"
    );
}

//! Run-level diagnostics, ignored by default. Dumps per-packet latency /
//! hop distributions and drop reasons for one seeded ALERT run — the tool
//! that found the destination-as-last-RF and routing-loop bugs during
//! calibration.
//!
//! ```text
//! DIAG_NODES=100 DIAG_SEED=1 cargo test --release -p alert-core \
//!     --test diag -- --ignored --nocapture
//! ```

use alert_core::{Alert, AlertConfig};
use alert_sim::{ScenarioConfig, World};

#[test]
#[ignore = "diagnostic dump, run explicitly with --ignored --nocapture"]
fn diag() {
    let nodes: usize = std::env::var("DIAG_NODES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(200);
    let seed: u64 = std::env::var("DIAG_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2);
    let mut cfg = ScenarioConfig::default()
        .with_nodes(nodes)
        .with_duration(100.0);
    cfg.traffic.pairs = 10;
    let mut w = World::new(cfg, seed, |_, _| Alert::new(AlertConfig::default()));
    w.run();
    let m = w.metrics();
    println!(
        "sent={} rate={:.3} lat={:?} hops/pkt={:.2} rf/pkt={:.2}",
        m.packets_sent(),
        m.delivery_rate(),
        m.mean_latency(),
        m.hops_per_packet(),
        m.mean_random_forwarders()
    );
    let mut lats: Vec<f64> = m.packets.iter().filter_map(|p| p.latency()).collect();
    lats.sort_by(|a, b| a.partial_cmp(b).unwrap());
    if !lats.is_empty() {
        println!(
            "lat p50={:.4} p90={:.4} p99={:.4} max={:.4}",
            lats[lats.len() / 2],
            lats[lats.len() * 9 / 10],
            lats[lats.len() * 99 / 100],
            lats.last().unwrap()
        );
    }
    let slow = m
        .packets
        .iter()
        .filter(|p| p.latency().is_some_and(|l| l > 0.1))
        .count();
    let undelivered = m
        .packets
        .iter()
        .filter(|p| p.delivered_at.is_none())
        .count();
    println!("slow(>100ms)={slow} undelivered={undelivered}");
    let mut hops: Vec<u32> = m.packets.iter().map(|p| p.hops).collect();
    hops.sort_unstable();
    println!(
        "hops p50={} p90={} max={}",
        hops[hops.len() / 2],
        hops[hops.len() * 9 / 10],
        hops.last().unwrap()
    );
    println!("drops: {:?}", m.drops);
    println!("worst packets:");
    for p in m
        .packets
        .iter()
        .filter(|p| p.latency().is_none_or(|l| l > 0.1))
        .take(12)
    {
        println!(
            "  s{}#{} hops={} rf={} lat={:?}",
            p.session.0,
            p.seq,
            p.hops,
            p.random_forwarders,
            p.latency()
        );
    }
}

//! Property tests of the ALERT packet format (Fig. 4).

use alert_core::{AlertPacket, PacketRole, RoutePhase, ALERT_FIXED_HEADER_BYTES};
use alert_crypto::{pk_encrypt, KeyPair, Pseudonym};
use alert_geom::{Axis, Point, Rect};
use alert_sim::{PacketId, SessionId};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn packet(payload: usize, zs_len: usize, bitmap: Option<u64>, h: u32, h_max: u32) -> AlertPacket {
    let mut rng = StdRng::seed_from_u64(1);
    let kp = KeyPair::generate(&mut rng);
    AlertPacket {
        role: PacketRole::Rreq,
        packet: PacketId(0),
        session: SessionId(0),
        seq: 0,
        ps: Pseudonym(1),
        pd: Pseudonym(2),
        zs_sealed: pk_encrypt(&kp.public, &vec![0u8; zs_len]),
        zd: Rect::new(Point::new(0.0, 0.0), Point::new(1.0, 1.0)),
        h,
        h_max,
        axis: Axis::Vertical,
        phase: RoutePhase::ZoneBroadcast,
        leg_ttl: 10,
        total_ttl: 64,
        payload_bytes: payload,
        bitmap_tag: bitmap,
    }
}

proptest! {
    /// Wire size is monotone in payload and always covers the header.
    #[test]
    fn wire_size_monotone(p1 in 0usize..4096, p2 in 0usize..4096, zs in 0usize..64) {
        let a = packet(p1, zs, None, 0, 5).wire_bytes();
        let b = packet(p2, zs, None, 0, 5).wire_bytes();
        prop_assert!(a >= ALERT_FIXED_HEADER_BYTES + p1);
        if p1 <= p2 {
            prop_assert!(a <= b);
        }
    }

    /// The bitmap adds a fixed-size field, independent of everything else.
    #[test]
    fn bitmap_cost_is_constant(payload in 0usize..2048, zs in 0usize..64, tag in any::<u64>()) {
        let without = packet(payload, zs, None, 0, 5).wire_bytes();
        let with = packet(payload, zs, Some(tag), 0, 5).wire_bytes();
        prop_assert_eq!(with - without, 12);
    }

    /// Partition budget arithmetic never underflows.
    #[test]
    fn remaining_partitions_saturate(h in 0u32..20, h_max in 0u32..10) {
        let p = packet(0, 16, None, h, h_max);
        prop_assert_eq!(p.remaining_partitions(), h_max.saturating_sub(h));
    }

    /// The sealed source zone grows with its plaintext in 4-byte blocks.
    #[test]
    fn sealed_zone_block_coding(zs in 0usize..64) {
        let p = packet(0, zs, None, 0, 5);
        prop_assert_eq!(p.zs_sealed.wire_len(), 4 + zs.div_ceil(4) * 8);
    }
}

//! Fuzz-style property tests: ALERT must stay panic-free and respect its
//! global invariants across arbitrary (small) scenarios — densities from
//! near-empty to dense, any speed, any anonymity parameters.

use alert_core::{Alert, AlertConfig};
use alert_sim::{MobilityKind, ScenarioConfig, World};
use proptest::prelude::*;

fn arb_mobility() -> impl Strategy<Value = MobilityKind> {
    prop_oneof![
        Just(MobilityKind::RandomWaypoint),
        Just(MobilityKind::Static),
        (2usize..6, 100.0f64..300.0)
            .prop_map(|(groups, range)| MobilityKind::Group { groups, range }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Any scenario ALERT can be configured with runs to completion with
    /// coherent metrics.
    #[test]
    fn alert_never_panics_and_metrics_are_coherent(
        nodes in 12usize..80,
        speed in 0.0f64..10.0,
        k in 1.0f64..40.0,
        pairs in 1usize..5,
        mobility in arb_mobility(),
        seed in any::<u64>(),
    ) {
        let mut cfg = ScenarioConfig::default()
            .with_nodes(nodes)
            .with_speed(speed)
            .with_duration(12.0)
            .with_mobility(mobility);
        cfg.traffic.pairs = pairs.min(nodes / 2);
        let acfg = AlertConfig::default().with_k(k);
        let mut w = World::new(cfg, seed, move |_, _| Alert::new(acfg));
        w.run();
        let m = w.metrics();
        prop_assert!((0.0..=1.0).contains(&m.delivery_rate()));
        // Every delivery is causal and within the run (plus grace).
        for p in &m.packets {
            if let Some(d) = p.delivered_at {
                prop_assert!(d >= p.sent_at, "delivery before send");
                prop_assert!(d <= 13.5, "delivery after the grace window");
            }
            // Hop budgeting: the per-attempt total TTL bounds hops even
            // across a retransmission (2 attempts by default).
            prop_assert!(
                p.hops <= 2 * (acfg.packet_ttl + 8),
                "packet hops {} exceed budget",
                p.hops
            );
            // Participants are distinct nodes.
            let mut sorted = p.participants.clone();
            sorted.sort_unstable();
            sorted.dedup();
            prop_assert_eq!(sorted.len(), p.participants.len());
        }
        // Latency percentiles are monotone when defined.
        if let (Some(p50), Some(p90)) = (m.latency_percentile(50.0), m.latency_percentile(90.0)) {
            prop_assert!(p90 >= p50);
        }
    }

    /// Crypto accounting: public-key operations stay per-session, never
    /// per-packet, under any load.
    #[test]
    fn pk_ops_bounded_by_sessions(
        nodes in 20usize..60,
        pairs in 1usize..5,
        seed in any::<u64>(),
    ) {
        let mut cfg = ScenarioConfig::default().with_nodes(nodes).with_duration(16.0);
        cfg.traffic.pairs = pairs.min(nodes / 2);
        let mut w = World::new(cfg, seed, |_, _| Alert::new(AlertConfig::default()));
        w.run();
        let c = w.metrics().crypto;
        let sessions = pairs.min(nodes / 2) as u64;
        prop_assert!(
            c.pk_encrypt <= sessions + 2,
            "pk_encrypt {} for {} sessions",
            c.pk_encrypt,
            sessions
        );
        prop_assert!(
            c.pk_decrypt <= sessions + 2,
            "pk_decrypt {} for {} sessions",
            c.pk_decrypt,
            sessions
        );
    }

    /// Determinism holds for arbitrary configurations, not just defaults.
    #[test]
    fn determinism_under_arbitrary_configs(
        nodes in 12usize..50,
        speed in 0.0f64..8.0,
        seed in any::<u64>(),
    ) {
        let mut cfg = ScenarioConfig::default()
            .with_nodes(nodes)
            .with_speed(speed)
            .with_duration(8.0);
        cfg.traffic.pairs = 2.min(nodes / 2);
        let run = |cfg: ScenarioConfig| {
            let mut w = World::new(cfg, seed, |_, _| Alert::new(AlertConfig::default()));
            w.run();
            (
                w.metrics().delivery_rate(),
                w.metrics().hops_per_packet(),
                w.metrics().crypto,
                w.metrics().control_frames,
            )
        };
        prop_assert_eq!(run(cfg.clone()), run(cfg));
    }
}

//! Perf-regression fences for the allocation-free hot paths: hello-round
//! ticking (scratch-buffer reuse), spatial-grid queries and incremental
//! position updates, and the 300-node end-to-end scenario that the
//! committed `BENCH_PR3.json` baseline tracks. If one of these regresses,
//! compare against the last recorded `BENCH_*.json` before digging in.

use alert_bench::{try_run_once, ProtocolChoice};
use alert_core::AlertConfig;
use alert_geom::{Point, Rect, SpatialGrid};
use alert_sim::{Api, DataRequest, Frame, ProtocolNode, ScenarioConfig, World};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

/// A do-nothing protocol: ticking a world of these exercises only the
/// simulator's own machinery (hello rounds, mobility, grid, rotation),
/// which is exactly what the scratch-buffer reuse optimizes.
#[derive(Default)]
struct Idle;

impl ProtocolNode for Idle {
    type Msg = ();
    fn name() -> &'static str {
        "IDLE"
    }
    fn on_data_request(&mut self, _api: &mut Api<'_, Self::Msg>, _req: &DataRequest) {}
    fn on_frame(&mut self, _api: &mut Api<'_, Self::Msg>, _frame: Frame<Self::Msg>) {}
}

fn bench_hello_tick(c: &mut Criterion) {
    let mut group = c.benchmark_group("hot/hello_tick");
    group.sample_size(10);
    for nodes in [100usize, 300] {
        group.bench_with_input(BenchmarkId::from_parameter(nodes), &nodes, |b, &nodes| {
            b.iter_with_setup(
                || {
                    let mut cfg = ScenarioConfig::default()
                        .with_nodes(nodes)
                        .with_duration(60.0);
                    cfg.traffic.pairs = 0;
                    let mut w = World::new(cfg, 0xA110C, |_, _| Idle);
                    w.run_until(10.0); // warm every scratch buffer
                    w
                },
                |mut w| {
                    // 20 hello rounds + mobility on warmed buffers.
                    w.run_until(30.0);
                    w
                },
            )
        });
    }
    group.finish();
}

fn bench_grid_incremental(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(7);
    let field = Rect::with_size(1000.0, 1000.0);
    let n = 300usize;
    let pts: Vec<(usize, Point)> = (0..n)
        .map(|i| {
            (
                i,
                Point::new(rng.gen_range(0.0..1000.0), rng.gen_range(0.0..1000.0)),
            )
        })
        .collect();
    let moves: Vec<(usize, Point)> = (0..n)
        .map(|i| {
            (
                i,
                Point::new(rng.gen_range(0.0..1000.0), rng.gen_range(0.0..1000.0)),
            )
        })
        .collect();

    let mut grid = SpatialGrid::new(field, 250.0);
    grid.rebuild(pts.iter().copied());
    c.bench_function("hot/grid_update_position_300", |b| {
        // Each iteration moves every node once: the per-mobility-tick
        // workload that used to be a full rebuild.
        b.iter(|| {
            for &(id, p) in &moves {
                grid.update_position(black_box(id), black_box(p));
            }
            for &(id, p) in &pts {
                grid.update_position(black_box(id), black_box(p));
            }
        })
    });

    c.bench_function("hot/grid_for_each_in_range_300", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            grid.for_each_in_range(black_box(Point::new(500.0, 500.0)), 250.0, |_, _| acc += 1);
            acc
        })
    });
}

fn bench_end_to_end_300(c: &mut Criterion) {
    let mut group = c.benchmark_group("hot/end_to_end");
    group.sample_size(10);
    let mut cfg = ScenarioConfig::default()
        .with_nodes(300)
        .with_duration(20.0);
    cfg.traffic.pairs = 5;
    group.bench_with_input(
        BenchmarkId::from_parameter("alert_300n_20s"),
        &cfg,
        |b, cfg| {
            b.iter(|| {
                try_run_once(
                    ProtocolChoice::Alert(AlertConfig::default()),
                    black_box(cfg),
                    42,
                )
                .expect("bench scenario")
            })
        },
    );
    group.finish();
}

criterion_group!(
    benches,
    bench_hello_tick,
    bench_grid_incremental,
    bench_end_to_end_300
);
criterion_main!(benches);

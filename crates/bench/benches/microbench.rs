//! Microbenchmarks of the hot algorithmic kernels: hierarchical zone
//! partitioning, spatial-grid queries, geographic forwarding primitives,
//! and the crypto substrate.

use alert_crypto::{seal, sha1, KeyPair, SymmetricKey};
use alert_geom::{destination_zone, separate, Axis, Point, Rect, SpatialGrid};
use alert_protocols::forwarding::{gabriel_neighbors, greedy_next_hop};
use alert_sim::NeighborEntry;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn field() -> Rect {
    Rect::with_size(1000.0, 1000.0)
}

fn bench_partition(c: &mut Criterion) {
    let f = field();
    let dest = Point::new(873.0, 911.0);
    c.bench_function("geom/destination_zone_h5", |b| {
        b.iter(|| destination_zone(black_box(&f), black_box(dest), 5, Axis::Vertical))
    });
    let zd = destination_zone(&f, dest, 5, Axis::Vertical);
    let me = Point::new(120.0, 95.0);
    c.bench_function("geom/separate_h5", |b| {
        b.iter(|| {
            separate(
                black_box(&f),
                black_box(me),
                black_box(&zd),
                Axis::Vertical,
                5,
            )
        })
    });
}

fn bench_grid(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(7);
    let mut group = c.benchmark_group("grid");
    for n in [100usize, 200, 400] {
        let pts: Vec<(usize, Point)> = (0..n)
            .map(|i| {
                (
                    i,
                    Point::new(rng.gen_range(0.0..1000.0), rng.gen_range(0.0..1000.0)),
                )
            })
            .collect();
        let mut grid = SpatialGrid::new(field(), 250.0);
        grid.rebuild(pts.iter().copied());
        group.bench_with_input(BenchmarkId::new("range_query", n), &grid, |b, g| {
            b.iter(|| g.query_range(black_box(Point::new(500.0, 500.0)), 250.0))
        });
        group.bench_with_input(BenchmarkId::new("rebuild", n), &pts, |b, pts| {
            let mut g = SpatialGrid::new(field(), 250.0);
            b.iter(|| g.rebuild(pts.iter().copied()))
        });
    }
    group.finish();
}

fn neighbor_table(n: usize, seed: u64) -> Vec<NeighborEntry> {
    let mut rng = StdRng::seed_from_u64(seed);
    let kp = KeyPair::generate(&mut rng);
    (0..n)
        .map(|i| NeighborEntry {
            pseudonym: alert_crypto::Pseudonym(i as u64),
            position: Point::new(rng.gen_range(0.0..500.0), rng.gen_range(0.0..500.0)),
            public_key: kp.public,
            heard_at: 0.0,
        })
        .collect()
}

fn bench_forwarding(c: &mut Criterion) {
    let table = neighbor_table(25, 3);
    let me = Point::new(250.0, 250.0);
    let target = Point::new(900.0, 900.0);
    c.bench_function("forwarding/greedy_next_hop_25", |b| {
        b.iter(|| greedy_next_hop(black_box(me), black_box(target), black_box(&table)))
    });
    c.bench_function("forwarding/gabriel_25", |b| {
        b.iter(|| gabriel_neighbors(black_box(me), black_box(&table)))
    });
}

fn bench_crypto(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(11);
    let data = vec![0xA5u8; 512];
    c.bench_function("crypto/sha1_512B", |b| b.iter(|| sha1(black_box(&data))));
    let key = SymmetricKey::random(&mut rng);
    c.bench_function("crypto/stream_seal_512B", |b| {
        b.iter(|| seal(black_box(&key), black_box(&data), &mut rng))
    });
    let kp = KeyPair::generate(&mut rng);
    c.bench_function("crypto/pk_encrypt_16B", |b| {
        b.iter(|| alert_crypto::pk_encrypt(black_box(&kp.public), black_box(&data[..16])))
    });
}

criterion_group!(
    benches,
    bench_partition,
    bench_grid,
    bench_forwarding,
    bench_crypto
);
criterion_main!(benches);

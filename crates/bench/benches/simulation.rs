//! Whole-simulation throughput: how fast one seeded scenario runs per
//! protocol. This is the cost of one Monte-Carlo sample in the
//! reproduction sweeps, and doubles as a regression fence for the
//! discrete-event engine.

use alert_bench::{try_run_once, ProtocolChoice};
use alert_core::AlertConfig;
use alert_sim::ScenarioConfig;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn small_scenario(nodes: usize) -> ScenarioConfig {
    let mut cfg = ScenarioConfig::default()
        .with_nodes(nodes)
        .with_duration(20.0);
    cfg.traffic.pairs = 5;
    cfg
}

fn bench_protocols(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulate_20s_100n");
    group.sample_size(10);
    let cfg = small_scenario(100);
    for proto in [
        ProtocolChoice::Alert(AlertConfig::default()),
        ProtocolChoice::Gpsr,
        ProtocolChoice::Alarm,
        ProtocolChoice::Ao2p,
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(proto.name()), &cfg, |b, cfg| {
            b.iter(|| try_run_once(black_box(proto), cfg, 42).expect("bench scenario"))
        });
    }
    group.finish();
}

fn bench_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulate_alert_scaling");
    group.sample_size(10);
    for nodes in [50usize, 100, 200, 400] {
        let cfg = small_scenario(nodes);
        group.bench_with_input(BenchmarkId::from_parameter(nodes), &cfg, |b, cfg| {
            b.iter(|| {
                try_run_once(
                    ProtocolChoice::Alert(AlertConfig::default()),
                    black_box(cfg),
                    42,
                )
                .expect("bench scenario")
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_protocols, bench_scaling);
criterion_main!(benches);

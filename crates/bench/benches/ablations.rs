//! Ablation benches for the design choices called out in DESIGN.md § 5:
//! how ALERT's knobs change the cost of a run. (The metric-level effects —
//! anonymity vs overhead — are asserted in `tests/ablation_metrics.rs`;
//! these benches fence the *time* cost of each variant.)

use alert_bench::{try_run_once, ProtocolChoice};
use alert_core::AlertConfig;
use alert_sim::ScenarioConfig;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn scenario() -> ScenarioConfig {
    let mut cfg = ScenarioConfig::default()
        .with_nodes(100)
        .with_duration(20.0);
    cfg.traffic.pairs = 5;
    cfg
}

/// Notify-and-go multiplies control traffic by the neighborhood size eta;
/// measure what that costs per run.
fn bench_notify_and_go(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_notify_go");
    group.sample_size(10);
    for on in [false, true] {
        let acfg = AlertConfig::default().with_notify_and_go(on);
        group.bench_with_input(
            BenchmarkId::from_parameter(if on { "on" } else { "off" }),
            &acfg,
            |b, acfg| {
                b.iter(|| {
                    try_run_once(ProtocolChoice::Alert(*acfg), black_box(&scenario()), 7)
                        .expect("bench scenario")
                })
            },
        );
    }
    group.finish();
}

/// k (destination anonymity) trades zone size against broadcast cost;
/// smaller k = more partitions = more RFs per packet.
fn bench_k_tradeoff(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_k_tradeoff");
    group.sample_size(10);
    for k in [2.0f64, 6.25, 25.0] {
        let acfg = AlertConfig::default().with_k(k);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("k{k}")),
            &acfg,
            |b, acfg| {
                b.iter(|| {
                    try_run_once(ProtocolChoice::Alert(*acfg), black_box(&scenario()), 7)
                        .expect("bench scenario")
                })
            },
        );
    }
    group.finish();
}

/// The intersection defense doubles the delivery steps in the zone.
fn bench_intersection_m(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_intersection_m");
    group.sample_size(10);
    let off = AlertConfig::default();
    group.bench_with_input(BenchmarkId::from_parameter("off"), &off, |b, acfg| {
        b.iter(|| {
            try_run_once(ProtocolChoice::Alert(*acfg), black_box(&scenario()), 7)
                .expect("bench scenario")
        })
    });
    for m in [2usize, 4] {
        let acfg = AlertConfig::default().with_intersection_defense(m);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("m{m}")),
            &acfg,
            |b, acfg| {
                b.iter(|| {
                    try_run_once(ProtocolChoice::Alert(*acfg), black_box(&scenario()), 7)
                        .expect("bench scenario")
                })
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_notify_and_go,
    bench_k_tradeoff,
    bench_intersection_m
);
criterion_main!(benches);

//! Planted-defect protocols: deliberately broken variants used to prove
//! the `simcheck` oracle suite can actually catch the bug classes it
//! claims to (the acceptance test for an oracle is a caught plant, not a
//! green run). Hidden from normal sweeps — `repro` never schedules them —
//! but reachable through the hidden `simrun --protocol __leaky-node-id`
//! name so a minimized failing case replays outside the fuzzer.

use alert_crypto::Pseudonym;
use alert_geom::Point;
use alert_protocols::forwarding::{greedy_next_hop, neighbor_by_pseudonym};
use alert_sim::{Api, DataRequest, Frame, NodeId, PacketId, ProtocolNode, TrafficClass};

/// Header bytes charged on top of the payload (mirrors GPSR's 40, plus
/// the 8-byte leaked identifier).
const LEAKY_HEADER_BYTES: usize = 48;

/// A greedy geographic data packet that commits the cardinal anonymity
/// sin: it carries the **ground-truth source `NodeId`** in the clear.
///
/// Everything else is a plain greedy-forwarding header; the leak is the
/// one deliberate defect, so the `no-node-id-on-wire` oracle is the only
/// invariant this protocol should trip.
#[derive(Debug, Clone)]
pub struct LeakyMsg {
    /// Instrumentation id.
    pub packet: PacketId,
    /// Payload size in bytes.
    pub bytes: usize,
    /// Destination position in the clear.
    pub target: Point,
    /// Destination pseudonym for final-hop handover.
    pub dst: Pseudonym,
    /// Remaining hop budget.
    pub ttl: u32,
    /// THE PLANT: the real source `NodeId`, leaked in every frame.
    pub src_node: u64,
}

/// Greedy-only geographic routing that stamps its own real [`NodeId`]
/// into every packet it originates — the identity leak that anonymity
/// oracles exist to catch.
#[derive(Debug, Clone)]
pub struct LeakyGeo {
    /// This node's ground-truth identity (captured at construction; a
    /// real protocol never sees it, which is the point of the plant).
    me: NodeId,
    /// Initial hop budget for each packet.
    ttl: u32,
}

impl LeakyGeo {
    /// A leaky node that knows (and will broadcast) its own identity.
    pub fn new(me: NodeId) -> LeakyGeo {
        LeakyGeo { me, ttl: 10 }
    }

    /// Greedy forwarding only — no perimeter recovery; undeliverable
    /// packets die at the local maximum like GPSR's silent TTL drop.
    fn forward(&self, api: &mut Api<'_, LeakyMsg>, mut msg: LeakyMsg) {
        if msg.ttl == 0 {
            return;
        }
        msg.ttl -= 1;
        let wire = msg.bytes + LEAKY_HEADER_BYTES;
        if let Some(d) = neighbor_by_pseudonym(api.neighbors(), msg.dst) {
            api.mark_hop(msg.packet);
            api.send_unicast(
                d.pseudonym,
                msg.clone(),
                wire,
                TrafficClass::Data,
                Some(msg.packet),
            );
            return;
        }
        if let Some(n) = greedy_next_hop(api.my_pos(), msg.target, api.neighbors()) {
            api.mark_hop(msg.packet);
            api.send_unicast(
                n.pseudonym,
                msg.clone(),
                wire,
                TrafficClass::Data,
                Some(msg.packet),
            );
        }
    }
}

impl ProtocolNode for LeakyGeo {
    type Msg = LeakyMsg;

    fn name() -> &'static str {
        "__LEAKY-NODE-ID"
    }

    fn on_data_request(&mut self, api: &mut Api<'_, Self::Msg>, req: &DataRequest) {
        let Some(info) = api.lookup(req.dst) else {
            return;
        };
        let msg = LeakyMsg {
            packet: req.packet,
            bytes: req.bytes,
            target: info.position,
            dst: info.pseudonym,
            ttl: self.ttl,
            src_node: self.me.0 as u64,
        };
        self.forward(api, msg);
    }

    fn on_frame(&mut self, api: &mut Api<'_, Self::Msg>, frame: Frame<Self::Msg>) {
        let msg = frame.msg;
        if msg.dst == api.my_pseudonym() || api.is_true_destination(msg.packet) {
            api.mark_delivered(msg.packet);
            return;
        }
        self.forward(api, msg);
    }
}

//! `simrun` — run one protocol on a scenario described by a JSON file
//! (or the paper's default) and print the run summary.
//!
//! ```text
//! simrun --protocol alert [--scenario scenario.json] [--seed 42] [--runs 5]
//! simrun --protocol gpsr --nodes 60 --pairs 3 --duration 20 \
//!        --trace /tmp/t.jsonl --profile profile.json
//! simrun --emit-default-scenario > scenario.json
//! ```
//!
//! Scenario files use the serde form of [`alert_sim::ScenarioConfig`]; see
//! `--emit-default-scenario` for a template. `--nodes/--pairs/--duration`
//! override the (file or default) scenario, so small smoke scenarios need
//! no file; `--mobility`, `--placement`, `--energy`/`--idle-watts`/
//! `--cluster-heads` and `--insiders` override the workload-family knobs
//! the same way (fine-grained parameters stay JSON-only). A metered run's
//! `--report` gains an `energy` block (per-cause drain, deaths,
//! cluster-head elections). `--trace` streams the structured JSONL event trace;
//! `--profile` writes the [`alert_sim::RunProfile`] JSON (pass `-` for
//! stdout). `--faults` loads an [`alert_sim::FaultPlan`] JSON into the
//! scenario; `--report` writes the graceful-degradation report (delivery,
//! latency with p50/p95/p99, node downs/ups, ARQ retries, drops by
//! reason). `--timeseries` samples the counter/histogram registry every
//! `--metrics-every` simulated seconds (default 5) into the
//! byte-deterministic `alert-timeseries/1` JSONL format — the input to
//! `tracequery rates`. `--postmortem` keeps a ring of the trailing trace
//! events and dumps them to the given path if the run aborts or panics.
//! All imply a single instrumented run.
//!
//! `--bench-json` switches to the perf-regression sweep mode: it times
//! end-to-end runs across `--bench-nodes` node counts and writes an
//! `alert-bench-perf/1` report (see [`alert_bench::perf`]) including a
//! `tracing_overhead` comparison (tracing disabled vs in-memory JSONL
//! sink vs registry sampling) on the smallest node count; with
//! `--bench-baseline OLD.json` the report embeds the previous run and a
//! per-node-count speedup map. `--bench-scaled N,N,...` adds the
//! density-constant large-population tier (`scaled_points`): each node
//! count rescales the field to hold nodes-per-m² at the base scenario's
//! value, measuring engine scaling rather than neighbor density.
//!
//! `--max-events`, `--max-sim-s`, `--max-wall-s` and
//! `--max-instant-events` set the run guardrails
//! ([`alert_sim::RunBudget`]); a tripped budget aborts the run with a
//! structured `run aborted: ...` error (exit 1) and, with `--trace`,
//! the written trace ends in a `run_aborted` event. All budgets are
//! off by default.
//!
//! Exit codes: `0` ok, `1` runtime failure (I/O, invalid scenario,
//! aborted or quarantined runs), `2` usage error.

use alert_bench::{
    perf_sweep, perf_sweep_scaled, render_perf_json, run_instrumented, set_progress, sweep_point,
    tracing_overhead, PostmortemDump, ProtocolChoice, RunOptions, RunOutput,
};
use alert_core::AlertConfig;
use alert_sim::{
    FaultPlan, InsiderConfig, InsiderMode, JsonlSink, Metrics, MobilityKind, Placement,
    ScenarioConfig,
};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut protocol = String::from("alert");
    let mut scenario_path: Option<String> = None;
    let mut seed = 42u64;
    let mut runs = 1usize;
    let mut trace_path: Option<String> = None;
    let mut profile_path: Option<String> = None;
    let mut faults_path: Option<String> = None;
    let mut report_path: Option<String> = None;
    let mut timeseries_path: Option<String> = None;
    let mut metrics_every: Option<f64> = None;
    let mut postmortem_path: Option<String> = None;
    let mut nodes: Option<usize> = None;
    let mut pairs: Option<usize> = None;
    let mut duration: Option<f64> = None;
    let mut mobility_flag: Option<String> = None;
    let mut placement_flag: Option<String> = None;
    let mut energy_j: Option<f64> = None;
    let mut idle_watts: Option<f64> = None;
    let mut cluster_heads: Option<f64> = None;
    let mut insiders_flag: Option<String> = None;
    let mut max_events: Option<u64> = None;
    let mut max_sim_s: Option<f64> = None;
    let mut max_wall_s: Option<f64> = None;
    let mut max_instant_events: Option<u64> = None;
    let mut bench_json: Option<String> = None;
    let mut bench_nodes = vec![100usize, 200, 300];
    let mut bench_runs = 3usize;
    let mut bench_scaled: Vec<usize> = Vec::new();
    let mut bench_scaled_runs = 1usize;
    let mut bench_baseline: Option<String> = None;
    let mut bench_build = String::from("default");
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--protocol" => {
                protocol = it
                    .next()
                    .unwrap_or_else(|| die("--protocol needs a value"))
                    .clone()
            }
            "--scenario" => scenario_path = it.next().cloned(),
            "--seed" => seed = parse(it.next(), "--seed"),
            "--runs" => runs = parse(it.next(), "--runs"),
            "--trace" => {
                trace_path = Some(
                    it.next()
                        .unwrap_or_else(|| die("--trace needs a path"))
                        .clone(),
                );
            }
            "--profile" => {
                profile_path = Some(
                    it.next()
                        .unwrap_or_else(|| die("--profile needs a path (or -)"))
                        .clone(),
                );
            }
            "--faults" => {
                faults_path = Some(
                    it.next()
                        .unwrap_or_else(|| die("--faults needs a plan.json path"))
                        .clone(),
                );
            }
            "--report" => {
                report_path = Some(
                    it.next()
                        .unwrap_or_else(|| die("--report needs a path (or -)"))
                        .clone(),
                );
            }
            "--timeseries" => {
                timeseries_path = Some(
                    it.next()
                        .unwrap_or_else(|| die("--timeseries needs a path (or -)"))
                        .clone(),
                );
            }
            "--metrics-every" => metrics_every = Some(parse(it.next(), "--metrics-every")),
            "--postmortem" => {
                postmortem_path = Some(
                    it.next()
                        .unwrap_or_else(|| die("--postmortem needs a path"))
                        .clone(),
                );
            }
            "--nodes" => nodes = Some(parse(it.next(), "--nodes")),
            "--pairs" => pairs = Some(parse(it.next(), "--pairs")),
            "--duration" => duration = Some(parse(it.next(), "--duration")),
            "--mobility" => {
                mobility_flag = Some(
                    it.next()
                        .unwrap_or_else(|| die("--mobility needs static|rwp|group:N|manhattan:HxV"))
                        .clone(),
                );
            }
            "--placement" => {
                placement_flag = Some(
                    it.next()
                        .unwrap_or_else(|| die("--placement needs uniform|convoy|teams:SIZE[:SPREAD]"))
                        .clone(),
                );
            }
            "--energy" => energy_j = Some(parse(it.next(), "--energy")),
            "--idle-watts" => idle_watts = Some(parse(it.next(), "--idle-watts")),
            "--cluster-heads" => cluster_heads = Some(parse(it.next(), "--cluster-heads")),
            "--insiders" => {
                insiders_flag = Some(
                    it.next()
                        .unwrap_or_else(|| die("--insiders needs FRACTION:log|drop|modify"))
                        .clone(),
                );
            }
            "--max-events" => max_events = Some(parse(it.next(), "--max-events")),
            "--max-sim-s" => max_sim_s = Some(parse(it.next(), "--max-sim-s")),
            "--max-wall-s" => max_wall_s = Some(parse(it.next(), "--max-wall-s")),
            "--max-instant-events" => {
                max_instant_events = Some(parse(it.next(), "--max-instant-events"));
            }
            "--bench-json" => {
                bench_json = Some(
                    it.next()
                        .unwrap_or_else(|| die("--bench-json needs a path (or -)"))
                        .clone(),
                );
            }
            "--bench-nodes" => {
                let list = it
                    .next()
                    .unwrap_or_else(|| die("--bench-nodes needs a comma-separated list"));
                bench_nodes = list
                    .split(',')
                    .map(|s| {
                        s.trim()
                            .parse()
                            .unwrap_or_else(|_| die(&format!("bad --bench-nodes entry '{s}'")))
                    })
                    .collect();
                if bench_nodes.is_empty() {
                    die("--bench-nodes list is empty");
                }
            }
            "--bench-runs" => bench_runs = parse(it.next(), "--bench-runs"),
            "--bench-scaled" => {
                let raw = it
                    .next()
                    .unwrap_or_else(|| die("--bench-scaled needs a comma-separated list"));
                bench_scaled = raw
                    .split(',')
                    .map(|s| {
                        s.trim()
                            .parse()
                            .unwrap_or_else(|_| die(&format!("bad --bench-scaled entry '{s}'")))
                    })
                    .collect();
            }
            "--bench-scaled-runs" => bench_scaled_runs = parse(it.next(), "--bench-scaled-runs"),
            "--bench-baseline" => bench_baseline = it.next().cloned(),
            "--bench-build" => {
                bench_build = it
                    .next()
                    .unwrap_or_else(|| die("--bench-build needs a label"))
                    .clone();
            }
            "--emit-default-scenario" => {
                println!(
                    "{}",
                    serde_json::to_string_pretty(&ScenarioConfig::default())
                        .expect("default scenario serializes")
                );
                return;
            }
            "--help" | "-h" => {
                usage();
                return;
            }
            other => die(&format!("unknown argument '{other}'")),
        }
    }

    let mut scenario: ScenarioConfig = match &scenario_path {
        None => ScenarioConfig::default(),
        Some(p) => {
            let text = std::fs::read_to_string(p)
                .unwrap_or_else(|e| fail(&format!("cannot read {p}: {e}")));
            serde_json::from_str(&text).unwrap_or_else(|e| fail(&format!("bad scenario {p}: {e}")))
        }
    };
    if let Some(n) = nodes {
        scenario = scenario.with_nodes(n);
    }
    if let Some(p) = pairs {
        scenario.traffic.pairs = p;
    }
    if let Some(d) = duration {
        scenario = scenario.with_duration(d);
    }
    if let Some(spec) = &mobility_flag {
        scenario.mobility = parse_mobility(spec);
    }
    if let Some(spec) = &placement_flag {
        scenario.placement = parse_placement(spec);
    }
    if let Some(j) = energy_j {
        scenario.energy.initial_j = Some(j);
    }
    if let Some(w) = idle_watts {
        scenario.energy.idle_watts = w;
    }
    if let Some(f) = cluster_heads {
        scenario.energy.cluster_head_fraction = f;
    }
    if let Some(spec) = &insiders_flag {
        scenario.insiders = parse_insiders(spec);
    }
    if max_events.is_some() {
        scenario.budget.max_events = max_events;
    }
    if max_sim_s.is_some() {
        scenario.budget.max_sim_seconds = max_sim_s;
    }
    if max_wall_s.is_some() {
        scenario.budget.max_wall_seconds = max_wall_s;
    }
    if max_instant_events.is_some() {
        scenario.budget.max_events_per_instant = max_instant_events;
    }
    if let Some(p) = &faults_path {
        let text =
            std::fs::read_to_string(p).unwrap_or_else(|e| fail(&format!("cannot read {p}: {e}")));
        let plan: FaultPlan = serde_json::from_str(&text)
            .unwrap_or_else(|e| fail(&format!("bad fault plan {p}: {e}")));
        scenario.faults = plan;
    }
    if let Err(e) = scenario.validate() {
        fail(&format!("invalid scenario: {e}"));
    }
    let choice = match protocol.to_lowercase().as_str() {
        "alert" => ProtocolChoice::Alert(AlertConfig::default()),
        "gpsr" => ProtocolChoice::Gpsr,
        "alarm" => ProtocolChoice::Alarm,
        "ao2p" => ProtocolChoice::Ao2p,
        "zap" => ProtocolChoice::Zap { growth: 1.0 },
        "anodr" => ProtocolChoice::Anodr,
        "prism" => ProtocolChoice::Prism,
        "mask" => ProtocolChoice::Mask,
        "mapcp" => ProtocolChoice::Mapcp,
        // Hidden: the planted NodeId-leaking protocol, so `simcheck`'s
        // minimized failing cases replay here (mirrors repro's hidden
        // `__panic-point`). Deliberately absent from usage/error text.
        "__leaky-node-id" => ProtocolChoice::LeakyNodeId,
        other => die(&format!(
            "unknown protocol '{other}' (alert|gpsr|alarm|ao2p|zap|anodr|prism|mask|mapcp)"
        )),
    };

    if metrics_every.is_some() && timeseries_path.is_none() {
        die("--metrics-every needs --timeseries PATH|- for the output");
    }
    if let Some(e) = metrics_every {
        if !e.is_finite() || e <= 0.0 {
            die("--metrics-every must be a positive number of simulated seconds");
        }
    }

    if let Some(out_path) = &bench_json {
        if trace_path.is_some()
            || profile_path.is_some()
            || report_path.is_some()
            || timeseries_path.is_some()
            || postmortem_path.is_some()
        {
            die("--bench-json is a standalone mode; drop --trace/--profile/--report/--timeseries/--postmortem");
        }
        let baseline = bench_baseline.as_ref().map(|p| {
            std::fs::read_to_string(p)
                .unwrap_or_else(|e| fail(&format!("cannot read baseline {p}: {e}")))
        });
        set_progress(true);
        let points = perf_sweep(choice, &scenario, &bench_nodes, bench_runs)
            .unwrap_or_else(|e| fail(&e.to_string()));
        // The density-constant tier is expensive (a 100k-node point is
        // ~1e9 events), so it defaults to a single timed run; the
        // deterministic counters make even one run comparable.
        let scaled = if bench_scaled.is_empty() {
            Vec::new()
        } else {
            perf_sweep_scaled(choice, &scenario, &bench_scaled, bench_scaled_runs)
                .unwrap_or_else(|e| fail(&e.to_string()))
        };
        // The tracing-overhead datum rides on the smallest node count:
        // it compares three modes per run, and the guard it encodes (a
        // disabled hot path costs nothing) is node-count independent.
        let overhead_nodes = bench_nodes.iter().copied().min().expect("list not empty");
        let overhead = tracing_overhead(choice, &scenario, overhead_nodes, bench_runs)
            .unwrap_or_else(|e| fail(&e.to_string()));
        let json = render_perf_json(
            choice.name(),
            &scenario,
            &bench_build,
            &points,
            &scaled,
            Some(&overhead),
            baseline.as_deref(),
        );
        if out_path == "-" {
            println!("{json}");
        } else {
            std::fs::write(out_path, json + "\n")
                .unwrap_or_else(|e| fail(&format!("cannot write bench report {out_path}: {e}")));
            eprintln!("bench report written to {out_path}");
        }
        return;
    }

    println!(
        "# {} on {} nodes, {:.0} s, seed {seed}, {runs} run(s)",
        choice.name(),
        scenario.nodes,
        scenario.duration_s
    );
    let instrumented = trace_path.is_some()
        || profile_path.is_some()
        || report_path.is_some()
        || timeseries_path.is_some()
        || postmortem_path.is_some();
    if instrumented && runs != 1 {
        die("--trace/--profile/--report/--timeseries/--postmortem instrument a single run; drop --runs or set it to 1");
    }
    if runs == 1 {
        let opts = RunOptions {
            trace: trace_path.as_ref().map(|p| {
                let sink = JsonlSink::create(p)
                    .unwrap_or_else(|e| fail(&format!("cannot create trace file {p}: {e}")));
                Box::new(sink) as _
            }),
            profile: profile_path.is_some(),
            metrics_every: timeseries_path
                .as_ref()
                .map(|_| metrics_every.unwrap_or(5.0)),
            postmortem: postmortem_path.as_ref().map(PostmortemDump::new),
        };
        // An aborted run still streamed its (truncated) trace — the file
        // ends with the run_aborted event — before this returns Err.
        let out = run_instrumented(choice, &scenario, seed, opts)
            .unwrap_or_else(|e| fail(&e.to_string()));
        println!("{}", out.metrics.summary());
        if let Some(p) = &profile_path {
            let json = serde_json::to_string_pretty(&out.profile).expect("run profile serializes");
            if p == "-" {
                println!("{json}");
            } else {
                std::fs::write(p, json + "\n")
                    .unwrap_or_else(|e| fail(&format!("cannot write profile {p}: {e}")));
                eprintln!("profile written to {p}");
            }
        }
        if let Some(p) = &trace_path {
            eprintln!("trace written to {p}");
        }
        if let Some(p) = &timeseries_path {
            let series = out
                .timeseries
                .as_ref()
                .expect("timeseries requested but not collected");
            let doc = series.to_jsonl();
            if p == "-" {
                print!("{doc}");
            } else {
                std::fs::write(p, doc)
                    .unwrap_or_else(|e| fail(&format!("cannot write timeseries {p}: {e}")));
                eprintln!("timeseries written to {p}");
            }
        }
        if let Some(p) = &report_path {
            let json = degradation_report(choice.name(), seed, &scenario, &out);
            if p == "-" {
                println!("{json}");
            } else {
                std::fs::write(p, json + "\n")
                    .unwrap_or_else(|e| fail(&format!("cannot write report {p}: {e}")));
                eprintln!("degradation report written to {p}");
            }
        }
    } else {
        let delivery = sweep_point(choice, &scenario, runs, Metrics::delivery_rate);
        let latency = sweep_point(choice, &scenario, runs, |m: &Metrics| {
            m.mean_latency().unwrap_or(f64::NAN) * 1000.0
        });
        let hops = sweep_point(choice, &scenario, runs, Metrics::hops_per_packet);
        println!("delivery  {delivery:.3}");
        println!("latency   {latency:.1} ms");
        println!("hops/pkt  {hops:.2}");
        println!("(single-run detail: rerun with --runs 1)");
        let quarantined = alert_bench::failures_total();
        if quarantined > 0 {
            fail(&format!(
                "{quarantined} run(s) quarantined (aborted or panicked; see [failed] lines above)"
            ));
        }
    }
}

/// The graceful-degradation report: how the run fared under the injected
/// faults, as one JSON object. Hand-formatted (like the trace codec) so
/// key order — and therefore diffs between runs — is stable.
fn degradation_report(
    protocol: &str,
    seed: u64,
    scenario: &ScenarioConfig,
    out: &RunOutput,
) -> String {
    let m = &out.metrics;
    let counter = |name: &str| out.registry.counters.get(name).copied().unwrap_or(0);
    let retries = out
        .registry
        .histograms
        .get("link.retries")
        .map_or(0, |h| h.count);
    let latency_ms = match m.mean_latency() {
        Some(l) if l.is_finite() => format!("{:.3}", l * 1000.0),
        _ => "null".into(),
    };
    // Quantiles come from the log-bucketed registry histogram: ranks are
    // exact, values are bucket midpoints within a factor of √2 (see
    // `LogHistogram::quantile`). Null when no packet was delivered.
    let latency_q = |q: f64| -> String {
        match out.registry.histograms.get("latency_s") {
            Some(h) if h.count > 0 => {
                let v = if q <= 0.50 {
                    h.p50
                } else if q <= 0.95 {
                    h.p95
                } else {
                    h.p99
                };
                format!("{:.3}", v * 1000.0)
            }
            _ => "null".into(),
        }
    };
    let delivery = m.delivery_rate();
    let drops: Vec<String> = m
        .drops
        .iter()
        .map(|(k, v)| format!("\"{k}\":{v}"))
        .collect();
    let mut s = String::from("{");
    s.push_str(&format!("\"protocol\":\"{protocol}\","));
    s.push_str(&format!("\"seed\":{seed},"));
    s.push_str(&format!("\"nodes\":{},", scenario.nodes));
    s.push_str(&format!("\"duration_s\":{},", scenario.duration_s));
    s.push_str(&format!(
        "\"fault_plan\":{{\"crashes\":{},\"regional_outages\":{},\"link_degradations\":{}}},",
        scenario.faults.crashes.len(),
        scenario.faults.regional_outages.len(),
        scenario.faults.link_degradations.len()
    ));
    s.push_str(&format!("\"app_packets\":{},", m.packets.len()));
    s.push_str(&format!(
        "\"delivered\":{},",
        m.packets
            .iter()
            .filter(|p| p.delivered_at.is_some())
            .count()
    ));
    s.push_str(&format!("\"delivery_rate\":{delivery:.6},"));
    s.push_str(&format!("\"mean_latency_ms\":{latency_ms},"));
    s.push_str(&format!("\"latency_p50_ms\":{},", latency_q(0.50)));
    s.push_str(&format!("\"latency_p95_ms\":{},", latency_q(0.95)));
    s.push_str(&format!("\"latency_p99_ms\":{},", latency_q(0.99)));
    s.push_str(&format!("\"node_downs\":{},", counter("node.downs")));
    s.push_str(&format!("\"node_ups\":{},", counter("node.ups")));
    s.push_str(&format!("\"link_retries\":{retries},"));
    // The energy block quantifies battery-driven degradation: how much
    // was drained per cause, how many nodes died empty, and how many
    // cluster-head elections the run saw. Metered runs only, so legacy
    // report consumers see an unchanged document.
    if scenario.energy.metered() {
        let e = &m.node_energy;
        s.push_str(&format!(
            "\"energy\":{{\"initial_j\":{},\"drained_j\":{:.6},\"tx_j\":{:.6},\"rx_j\":{:.6},\
             \"idle_j\":{:.6},\"beacon_j\":{:.6},\"deaths\":{},\"cluster_heads\":{}}},",
            scenario.energy.initial_j.unwrap_or(0.0),
            e.drained_j,
            e.tx_j,
            e.rx_j,
            e.idle_j,
            e.beacon_j,
            e.deaths,
            counter("energy.cluster_heads"),
        ));
    }
    s.push_str(&format!("\"drops\":{{{}}}", drops.join(",")));
    s.push('}');
    s
}

fn parse<T: std::str::FromStr>(v: Option<&String>, flag: &str) -> T {
    v.and_then(|s| s.parse().ok())
        .unwrap_or_else(|| die(&format!("{flag} needs a numeric value")))
}

/// `--mobility static|rwp|group:GROUPS|manhattan:HxV`. Fine-grained knobs
/// (group range, turn probability, speed classes) keep their scenario
/// defaults; use `--scenario` JSON to set them.
fn parse_mobility(spec: &str) -> MobilityKind {
    match spec {
        "static" => MobilityKind::Static,
        "rwp" => MobilityKind::RandomWaypoint,
        _ => {
            if let Some(n) = spec.strip_prefix("group:") {
                MobilityKind::Group {
                    groups: n
                        .parse()
                        .unwrap_or_else(|_| die(&format!("bad --mobility group count '{n}'"))),
                    range: 100.0,
                }
            } else if let Some(dims) = spec.strip_prefix("manhattan:") {
                let (h, v) = dims
                    .split_once('x')
                    .unwrap_or_else(|| die(&format!("bad --mobility grid '{dims}' (want HxV)")));
                MobilityKind::ManhattanGrid {
                    h_streets: h
                        .parse()
                        .unwrap_or_else(|_| die(&format!("bad --mobility street count '{h}'"))),
                    v_streets: v
                        .parse()
                        .unwrap_or_else(|_| die(&format!("bad --mobility street count '{v}'"))),
                    turn_prob: 0.5,
                    speed_classes: 1,
                }
            } else {
                die(&format!(
                    "unknown --mobility '{spec}' (static|rwp|group:N|manhattan:HxV)"
                ))
            }
        }
    }
}

/// `--placement uniform|convoy|teams:SIZE[:SPREAD]` (spread in metres,
/// default 50).
fn parse_placement(spec: &str) -> Placement {
    match spec {
        "uniform" => Placement::Uniform,
        "convoy" => Placement::Convoy,
        _ => {
            let Some(rest) = spec.strip_prefix("teams:") else {
                die(&format!(
                    "unknown --placement '{spec}' (uniform|convoy|teams:SIZE[:SPREAD])"
                ))
            };
            let (size, spread) = match rest.split_once(':') {
                Some((s, m)) => (
                    s,
                    m.parse()
                        .unwrap_or_else(|_| die(&format!("bad --placement spread '{m}'"))),
                ),
                None => (rest, 50.0),
            };
            Placement::SmallTeams {
                team_size: size
                    .parse()
                    .unwrap_or_else(|_| die(&format!("bad --placement team size '{size}'"))),
                spread_m: spread,
            }
        }
    }
}

/// `--insiders FRACTION:MODE` with mode `log|drop|modify` (plus the
/// hidden `modify-stealth` used by the oracle drill's replay commands).
fn parse_insiders(spec: &str) -> InsiderConfig {
    let Some((frac, mode)) = spec.split_once(':') else {
        die(&format!(
            "bad --insiders '{spec}' (want FRACTION:log|drop|modify)"
        ))
    };
    InsiderConfig {
        fraction: frac
            .parse()
            .unwrap_or_else(|_| die(&format!("bad --insiders fraction '{frac}'"))),
        mode: match mode {
            "log" => InsiderMode::Log,
            "drop" => InsiderMode::Drop,
            "modify" => InsiderMode::Modify,
            "modify-stealth" => InsiderMode::ModifyStealth,
            other => die(&format!("unknown --insiders mode '{other}'")),
        },
    }
}

fn usage() {
    eprintln!("usage: simrun [--protocol alert|gpsr|alarm|ao2p|zap|anodr|prism|mask|mapcp]");
    eprintln!("              [--scenario file.json] [--seed N] [--runs N]");
    eprintln!("              [--nodes N] [--pairs N] [--duration SECS]");
    eprintln!("              [--mobility static|rwp|group:N|manhattan:HxV]");
    eprintln!("              [--placement uniform|convoy|teams:SIZE[:SPREAD]]");
    eprintln!("              [--energy JOULES] [--idle-watts W] [--cluster-heads FRAC]");
    eprintln!("              [--insiders FRACTION:log|drop|modify]");
    eprintln!("              [--trace trace.jsonl] [--profile profile.json|-]");
    eprintln!("              [--faults plan.json] [--report report.json|-]");
    eprintln!("              [--timeseries series.jsonl|-] [--metrics-every SIM-SECS]");
    eprintln!("              [--postmortem postmortem.jsonl]");
    eprintln!("              [--max-events N] [--max-sim-s SECS] [--max-wall-s SECS]");
    eprintln!("              [--max-instant-events N]   (run guardrails, off by default)");
    eprintln!("       simrun --bench-json BENCH.json|- [--bench-nodes 100,200,300]");
    eprintln!("              [--bench-runs N] [--bench-baseline OLD.json]");
    eprintln!("              [--bench-scaled 1000,10000,100000] [--bench-scaled-runs N]");
    eprintln!("              [--bench-build LABEL]   (perf-regression sweep mode;");
    eprintln!("              --duration/--pairs/--protocol set the base scenario)");
    eprintln!("       simrun --emit-default-scenario > scenario.json");
}

/// Usage error: complain and exit 2.
fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}

/// Runtime failure (I/O, invalid scenario data, aborted runs): complain
/// and exit 1.
fn fail(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(1);
}

//! `simrun` — run one protocol on a scenario described by a JSON file
//! (or the paper's default) and print the run summary.
//!
//! ```text
//! simrun --protocol alert [--scenario scenario.json] [--seed 42] [--runs 5]
//! simrun --emit-default-scenario > scenario.json
//! ```
//!
//! Scenario files use the serde form of [`alert_sim::ScenarioConfig`]; see
//! `--emit-default-scenario` for a template.

use alert_bench::{run_once, sweep_point, ProtocolChoice};
use alert_core::AlertConfig;
use alert_sim::{Metrics, ScenarioConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut protocol = String::from("alert");
    let mut scenario_path: Option<String> = None;
    let mut seed = 42u64;
    let mut runs = 1usize;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--protocol" => protocol = it.next().unwrap_or_else(|| die("--protocol needs a value")).clone(),
            "--scenario" => scenario_path = it.next().cloned(),
            "--seed" => seed = parse(it.next(), "--seed"),
            "--runs" => runs = parse(it.next(), "--runs"),
            "--emit-default-scenario" => {
                println!(
                    "{}",
                    serde_json::to_string_pretty(&ScenarioConfig::default())
                        .expect("default scenario serializes")
                );
                return;
            }
            "--help" | "-h" => {
                usage();
                return;
            }
            other => die(&format!("unknown argument '{other}'")),
        }
    }

    let scenario: ScenarioConfig = match &scenario_path {
        None => ScenarioConfig::default(),
        Some(p) => {
            let text = std::fs::read_to_string(p)
                .unwrap_or_else(|e| die(&format!("cannot read {p}: {e}")));
            serde_json::from_str(&text).unwrap_or_else(|e| die(&format!("bad scenario {p}: {e}")))
        }
    };
    if let Err(e) = scenario.validate() {
        die(&format!("invalid scenario: {e}"));
    }
    let choice = match protocol.to_lowercase().as_str() {
        "alert" => ProtocolChoice::Alert(AlertConfig::default()),
        "gpsr" => ProtocolChoice::Gpsr,
        "alarm" => ProtocolChoice::Alarm,
        "ao2p" => ProtocolChoice::Ao2p,
        "zap" => ProtocolChoice::Zap { growth: 1.0 },
        "anodr" => ProtocolChoice::Anodr,
        "prism" => ProtocolChoice::Prism,
        "mask" => ProtocolChoice::Mask,
        "mapcp" => ProtocolChoice::Mapcp,
        other => die(&format!(
            "unknown protocol '{other}' (alert|gpsr|alarm|ao2p|zap|anodr|prism|mask|mapcp)"
        )),
    };

    println!(
        "# {} on {} nodes, {:.0} s, seed {seed}, {runs} run(s)",
        choice.name(),
        scenario.nodes,
        scenario.duration_s
    );
    if runs == 1 {
        let m = run_once(choice, &scenario, seed);
        println!("{}", m.summary());
    } else {
        let delivery = sweep_point(choice, &scenario, runs, Metrics::delivery_rate);
        let latency = sweep_point(choice, &scenario, runs, |m: &Metrics| {
            m.mean_latency().unwrap_or(f64::NAN) * 1000.0
        });
        let hops = sweep_point(choice, &scenario, runs, Metrics::hops_per_packet);
        println!("delivery  {delivery:.3}");
        println!("latency   {latency:.1} ms");
        println!("hops/pkt  {hops:.2}");
        println!("(single-run detail: rerun with --runs 1)");
    }
}

fn parse<T: std::str::FromStr>(v: Option<&String>, flag: &str) -> T {
    v.and_then(|s| s.parse().ok())
        .unwrap_or_else(|| die(&format!("{flag} needs a numeric value")))
}

fn usage() {
    eprintln!("usage: simrun [--protocol alert|gpsr|alarm|ao2p|zap|anodr|prism|mask|mapcp]");
    eprintln!("              [--scenario file.json] [--seed N] [--runs N]");
    eprintln!("       simrun --emit-default-scenario > scenario.json");
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}

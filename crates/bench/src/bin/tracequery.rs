//! `tracequery` — interrogate a stored `--trace` JSONL file (or an
//! `alert-timeseries/1` series) without re-running the simulation.
//!
//! ```text
//! tracequery filter trace.jsonl --node 17 --after 10 --before 20 --kind drop
//! tracequery filter trace.jsonl --reason unicast_channel_loss --format csv
//! tracequery follow trace.jsonl --packet 3
//! tracequery windows trace.jsonl --every 5 --format json
//! tracequery anonymity trace.jsonl --every 5 [--session 0] [--summary]
//! tracequery rates series.jsonl [--counter tx.frames]
//! ```
//!
//! Subcommands:
//!
//! * `filter` — events matching a conjunction of `--node`, `--after` /
//!   `--before` (simulated seconds, inclusive), `--kind` (canonical `ev`
//!   name), `--reason` (canonical drop reason, implies `--kind drop`) and
//!   `--packet`; rendered as canonical JSONL (default) or CSV.
//! * `follow` — every event referencing `--packet`, in trace order: the
//!   packet's life from `app_send` through its hop path to delivery or
//!   drop.
//! * `windows` — per-window aggregates (events by kind, tx/rx bytes,
//!   drops by reason, deliveries, latency sum) as CSV (default) or the
//!   `alert-windows/1` JSON document.
//! * `anonymity` — the per-flow anonymity-set timeseries: for each S–D
//!   session and window, the recipient-set size `k`, its entropy
//!   `log2 k`, and the intersection attacker's surviving candidate count
//!   (see `alert_adversary::telemetry`). `--summary` prints one line per
//!   flow instead.
//! * `rates` — per-window rates derived from a stored
//!   `alert-timeseries/1` file: all counters (wide CSV) or one
//!   `--counter` (narrow CSV with cumulative, delta and rate columns).
//!
//! All output is hand-formatted with the trace codec's shortest
//! round-trip float rules, so the same input always produces
//! byte-identical output. Exit codes: `0` ok, `1` runtime failure
//! (unreadable or malformed input), `2` usage error.

use alert_adversary::anonymity_timeseries;
use alert_sim::{
    filter_events, follow_packet, parse_trace, render_events_csv, render_events_jsonl,
    render_windows_csv, render_windows_json, window_aggregates, EventFilter, MetricsTimeseries,
    TraceEvent,
};
use std::fmt::Write as _;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        usage();
        std::process::exit(2);
    };
    match cmd.as_str() {
        "filter" => cmd_filter(&args[1..]),
        "follow" => cmd_follow(&args[1..]),
        "windows" => cmd_windows(&args[1..]),
        "anonymity" => cmd_anonymity(&args[1..]),
        "rates" => cmd_rates(&args[1..]),
        "--help" | "-h" | "help" => usage(),
        other => die(&format!(
            "unknown subcommand '{other}' (filter|follow|windows|anonymity|rates)"
        )),
    }
}

/// Pulls the one positional path out of `args`, returning the flags.
fn split_path<'a>(args: &'a [String], what: &str) -> (&'a str, Vec<&'a String>) {
    let mut path = None;
    let mut rest = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a.starts_with("--") {
            rest.push(a);
            if a != "--summary" {
                if let Some(v) = it.next() {
                    rest.push(v);
                }
            }
        } else if path.is_none() {
            path = Some(a.as_str());
        } else {
            die(&format!("unexpected extra argument '{a}'"));
        }
    }
    match path {
        Some(p) => (p, rest),
        None => die(&format!("missing {what} path")),
    }
}

/// Parses `--flag value` pairs out of the flag list; `on_flag` sees each
/// `(flag, value)` and returns false for flags it does not know.
fn parse_flags<'a>(flags: &[&'a String], mut on_flag: impl FnMut(&str, &'a str) -> bool) {
    let mut it = flags.iter();
    while let Some(flag) = it.next() {
        let flag = flag.as_str();
        if flag == "--summary" {
            if !on_flag(flag, "") {
                die(&format!("unknown flag '{flag}' for this subcommand"));
            }
            continue;
        }
        let Some(value) = it.next() else {
            die(&format!("{flag} needs a value"));
        };
        if !on_flag(flag, value.as_str()) {
            die(&format!("unknown flag '{flag}' for this subcommand"));
        }
    }
}

fn load_trace(path: &str) -> Vec<TraceEvent> {
    let text =
        std::fs::read_to_string(path).unwrap_or_else(|e| fail(&format!("cannot read {path}: {e}")));
    parse_trace(&text).unwrap_or_else(|e| fail(&format!("bad trace {path}: {e}")))
}

fn cmd_filter(args: &[String]) {
    let (path, flags) = split_path(args, "trace");
    let mut filter = EventFilter::default();
    let mut format = "jsonl".to_owned();
    parse_flags(&flags, |flag, value| {
        match flag {
            "--node" => filter.node = Some(parse_num(value, flag)),
            "--after" => filter.t_min = Some(parse_num(value, flag)),
            "--before" => filter.t_max = Some(parse_num(value, flag)),
            "--kind" => filter.kind = Some(value.to_owned()),
            "--reason" => filter.drop_reason = Some(value.to_owned()),
            "--packet" => filter.packet = Some(parse_num(value, flag)),
            "--format" => format = value.to_owned(),
            _ => return false,
        }
        true
    });
    let events = load_trace(path);
    let selected = filter_events(&events, &filter);
    print!("{}", render_events(&selected, &format));
}

fn cmd_follow(args: &[String]) {
    let (path, flags) = split_path(args, "trace");
    let mut packet: Option<u64> = None;
    let mut format = "jsonl".to_owned();
    parse_flags(&flags, |flag, value| {
        match flag {
            "--packet" => packet = Some(parse_num(value, flag)),
            "--format" => format = value.to_owned(),
            _ => return false,
        }
        true
    });
    let Some(packet) = packet else {
        die("follow needs --packet N");
    };
    let events = load_trace(path);
    let path_events = follow_packet(&events, packet);
    print!("{}", render_events(&path_events, &format));
}

fn render_events(events: &[&TraceEvent], format: &str) -> String {
    match format {
        "jsonl" => render_events_jsonl(events),
        "csv" => render_events_csv(events),
        other => die(&format!("unknown --format '{other}' (jsonl|csv)")),
    }
}

fn cmd_windows(args: &[String]) {
    let (path, flags) = split_path(args, "trace");
    let mut every = 5.0f64;
    let mut format = "csv".to_owned();
    parse_flags(&flags, |flag, value| {
        match flag {
            "--every" => every = parse_num(value, flag),
            "--format" => format = value.to_owned(),
            _ => return false,
        }
        true
    });
    check_every(every);
    let events = load_trace(path);
    let windows = window_aggregates(&events, every);
    match format.as_str() {
        "csv" => print!("{}", render_windows_csv(&windows)),
        "json" => print!("{}", render_windows_json(every, &windows)),
        other => die(&format!("unknown --format '{other}' (csv|json)")),
    }
}

fn cmd_anonymity(args: &[String]) {
    let (path, flags) = split_path(args, "trace");
    let mut every = 5.0f64;
    let mut session: Option<u64> = None;
    let mut summary = false;
    parse_flags(&flags, |flag, value| {
        match flag {
            "--every" => every = parse_num(value, flag),
            "--session" => session = Some(parse_num(value, flag)),
            "--summary" => summary = true,
            _ => return false,
        }
        true
    });
    check_every(every);
    let events = load_trace(path);
    let flows = anonymity_timeseries(&events, every);
    let mut out = String::new();
    if summary {
        out.push_str("session,src,dst,windows,identified,destination_excluded,final_candidates\n");
        for f in &flows {
            if session.is_some() && session != Some(f.session) {
                continue;
            }
            let _ = write!(
                out,
                "{},{},{},{},{},{},",
                f.session,
                f.src,
                f.dst,
                f.samples.len(),
                f.identified as u8,
                f.destination_excluded as u8
            );
            push_candidates(&mut out, f.final_candidates);
            out.push('\n');
        }
    } else {
        out.push_str(
            "session,src,dst,t_start,t_end,recipients,entropy_bits,candidates,destination_excluded\n",
        );
        for f in &flows {
            if session.is_some() && session != Some(f.session) {
                continue;
            }
            for s in &f.samples {
                let _ = write!(out, "{},{},{},", f.session, f.src, f.dst);
                push_f64(&mut out, s.t_start);
                out.push(',');
                push_f64(&mut out, s.t_end);
                let _ = write!(out, ",{},", s.recipients);
                push_f64(&mut out, s.entropy_bits);
                out.push(',');
                push_candidates(&mut out, s.candidates);
                let _ = write!(out, ",{}", s.destination_excluded as u8);
                out.push('\n');
            }
        }
    }
    print!("{out}");
}

fn cmd_rates(args: &[String]) {
    let (path, flags) = split_path(args, "timeseries");
    let mut counter: Option<String> = None;
    parse_flags(&flags, |flag, value| {
        match flag {
            "--counter" => counter = Some(value.to_owned()),
            _ => return false,
        }
        true
    });
    let text =
        std::fs::read_to_string(path).unwrap_or_else(|e| fail(&format!("cannot read {path}: {e}")));
    let series = MetricsTimeseries::parse(&text)
        .unwrap_or_else(|e| fail(&format!("bad timeseries {path}: {e}")));
    let mut out = String::new();
    match counter {
        Some(name) => {
            // Narrow form: one counter's cumulative value, per-window
            // delta, and rate per simulated second.
            out.push_str("t,cumulative,delta,rate_per_s\n");
            for s in &series.samples {
                push_f64(&mut out, s.t);
                let c = s.counters.get(&name).copied().unwrap_or(0);
                let d = s.deltas.get(&name).copied().unwrap_or(0);
                let _ = write!(out, ",{c},{d},");
                push_f64(&mut out, s.rate(&name, series.every_s));
                out.push('\n');
            }
        }
        None => {
            // Wide form: one rate column per counter seen in the series
            // (counters are identical across samples by construction).
            let names: Vec<&String> = series
                .samples
                .first()
                .map(|s| s.counters.keys().collect())
                .unwrap_or_default();
            out.push('t');
            for n in &names {
                let _ = write!(out, ",{n}");
            }
            out.push('\n');
            for s in &series.samples {
                push_f64(&mut out, s.t);
                for n in &names {
                    out.push(',');
                    push_f64(&mut out, s.rate(n, series.every_s));
                }
                out.push('\n');
            }
        }
    }
    print!("{out}");
}

/// Shortest-round-trip float rendering, matching the trace codec.
fn push_f64(out: &mut String, v: f64) {
    debug_assert!(v.is_finite());
    let _ = write!(out, "{v:?}");
}

/// `usize::MAX` means "never observed" — rendered as an empty CSV cell.
fn push_candidates(out: &mut String, candidates: usize) {
    if candidates != usize::MAX {
        let _ = write!(out, "{candidates}");
    }
}

fn check_every(every: f64) {
    if !every.is_finite() || every <= 0.0 {
        die("--every must be a positive number of simulated seconds");
    }
}

fn parse_num<T: std::str::FromStr>(value: &str, flag: &str) -> T {
    value
        .parse()
        .unwrap_or_else(|_| die(&format!("{flag} needs a numeric value, got '{value}'")))
}

fn usage() {
    eprintln!("usage: tracequery filter    TRACE.jsonl [--node N] [--after T] [--before T]");
    eprintln!("                            [--kind EV] [--reason DROP-REASON] [--packet N]");
    eprintln!("                            [--format jsonl|csv]");
    eprintln!("       tracequery follow    TRACE.jsonl --packet N [--format jsonl|csv]");
    eprintln!("       tracequery windows   TRACE.jsonl [--every SIM-SECS] [--format csv|json]");
    eprintln!("       tracequery anonymity TRACE.jsonl [--every SIM-SECS] [--session N]");
    eprintln!("                            [--summary]");
    eprintln!("       tracequery rates     SERIES.jsonl [--counter NAME]");
}

/// Usage error: complain and exit 2.
fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}

/// Runtime failure (I/O, malformed input): complain and exit 1.
fn fail(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(1);
}

//! `repro` — regenerates the ALERT paper's tables and figures.
//!
//! ```text
//! repro <experiment|all> [--runs N]
//!
//! experiments:
//!   table1  fig5c  fig7a  fig7b  fig9a  fig9b
//!   fig10a  fig10b fig11  fig12  fig13a fig13b
//!   fig14a  fig14b fig15a fig15b fig16a fig16b fig17
//!   claim-dos claim-interception claim-defense-cost claim-energy
//!   panorama churn
//! ```
//!
//! `--runs` controls the Monte-Carlo repetitions per data point (the
//! paper averages 30 runs; the default here is 10 to keep a full `all`
//! pass in minutes — pass `--runs 30` for the paper's setting).
//! `--progress` prints one `[progress]` line per data point on stderr
//! (protocol, run count, wall-clock seconds) so long sweeps are
//! watchable.

use alert_bench::figures::{analytic, attacks, claims, faults, participants, performance, zone};
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut runs = 10usize;
    let mut csv_dir: Option<String> = None;
    let mut targets: Vec<String> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--runs" => {
                runs = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--runs needs a positive integer"));
            }
            "--csv" => {
                csv_dir = Some(
                    it.next()
                        .unwrap_or_else(|| die("--csv needs a directory"))
                        .clone(),
                );
            }
            "--progress" => alert_bench::set_progress(true),
            "--help" | "-h" => {
                print_usage();
                return;
            }
            other => targets.push(other.to_string()),
        }
    }
    if let Some(dir) = &csv_dir {
        std::fs::create_dir_all(dir).unwrap_or_else(|e| die(&format!("cannot create {dir}: {e}")));
    }
    if targets.is_empty() {
        print_usage();
        std::process::exit(2);
    }
    if targets.iter().any(|t| t == "all") {
        targets = ALL.iter().map(|s| s.to_string()).collect();
    }
    println!("# ALERT reproduction — {runs} runs per data point\n");
    for t in &targets {
        let start = Instant::now();
        let out = render(t, runs).unwrap_or_else(|| die(&format!("unknown experiment '{t}'")));
        match out {
            Rendered::Text(text) => print!("{text}"),
            Rendered::Table(table) => {
                print!("{}", table.render());
                if let Some(dir) = &csv_dir {
                    let path = format!("{dir}/{t}.csv");
                    std::fs::write(&path, table.to_csv())
                        .unwrap_or_else(|e| die(&format!("cannot write {path}: {e}")));
                }
            }
        }
        eprintln!("[{t}] done in {:.1}s", start.elapsed().as_secs_f64());
    }
}

/// A rendered experiment: a pre-formatted text block (Table 1) or a
/// structured table (everything else, CSV-exportable).
enum Rendered {
    Text(String),
    Table(alert_bench::FigureTable),
}

const ALL: [&str; 25] = [
    "table1",
    "fig5c",
    "fig7a",
    "fig7b",
    "fig9a",
    "fig9b",
    "fig10a",
    "fig10b",
    "fig11",
    "fig12",
    "fig13a",
    "fig13b",
    "fig14a",
    "fig14b",
    "fig15a",
    "fig15b",
    "fig16a",
    "fig16b",
    "fig17",
    "claim-dos",
    "claim-interception",
    "claim-defense-cost",
    "claim-energy",
    "panorama",
    "churn",
];

fn render(target: &str, runs: usize) -> Option<Rendered> {
    Some(match target {
        "table1" => Rendered::Text(attacks::table1()),
        "fig5c" => Rendered::Table(attacks::fig5c(runs)),
        "fig7a" => Rendered::Table(analytic::fig7a()),
        "fig7b" => Rendered::Table(analytic::fig7b()),
        "fig9a" => Rendered::Table(analytic::fig9a()),
        "fig9b" => Rendered::Table(analytic::fig9b()),
        "fig10a" => Rendered::Table(participants::fig10a(runs)),
        "fig10b" => Rendered::Table(participants::fig10b(runs)),
        "fig11" => Rendered::Table(participants::fig11(runs)),
        "fig12" => Rendered::Table(zone::fig12(runs)),
        "fig13a" => Rendered::Table(zone::fig13a(runs)),
        "fig13b" => Rendered::Table(zone::fig13b(runs)),
        "fig14a" => Rendered::Table(performance::fig14a(runs)),
        "fig14b" => Rendered::Table(performance::fig14b(runs)),
        "fig15a" => Rendered::Table(performance::fig15a(runs)),
        "fig15b" => Rendered::Table(performance::fig15b(runs)),
        "fig16a" => Rendered::Table(performance::fig16a(runs)),
        "fig16b" => Rendered::Table(performance::fig16b(runs)),
        "fig17" => Rendered::Table(performance::fig17(runs)),
        "claim-dos" => Rendered::Table(claims::claim_dos(runs)),
        "claim-interception" => Rendered::Table(claims::claim_interception(runs)),
        "claim-defense-cost" => Rendered::Table(claims::claim_defense_cost(runs)),
        "claim-energy" => Rendered::Table(claims::claim_energy(runs)),
        "panorama" => Rendered::Table(claims::panorama(runs)),
        "churn" => Rendered::Table(faults::churn_sweep(runs)),
        _ => return None,
    })
}

fn print_usage() {
    eprintln!("usage: repro <experiment...|all> [--runs N] [--csv DIR] [--progress]");
    eprintln!("experiments: {}", ALL.join(" "));
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}

//! `repro` — regenerates the ALERT paper's tables and figures.
//!
//! ```text
//! repro <experiment...|all> [--runs N] [--csv DIR] [--resume] [--progress]
//!
//! experiments:
//!   table1  fig5c  anonymity-vs-time  fig7a  fig7b  fig9a  fig9b
//!   fig10a  fig10b fig11  fig12  fig13a fig13b
//!   fig14a  fig14b fig15a fig15b fig16a fig16b fig17
//!   claim-dos claim-interception claim-defense-cost claim-energy
//!   panorama churn
//! ```
//!
//! `--runs` controls the Monte-Carlo repetitions per data point (the
//! paper averages 30 runs; the default here is 10 to keep a full `all`
//! pass in minutes — pass `--runs 30` for the paper's setting).
//! `--progress` prints one `[progress]` line per data point on stderr
//! (protocol, run count, wall-clock seconds) so long sweeps are
//! watchable.
//!
//! With `--csv DIR` every table is additionally written to
//! `DIR/<experiment>.csv` — atomically (temp file + rename), so a
//! killed campaign never leaves a truncated CSV — and a manifest
//! journal (`manifest.jsonl`) records each experiment's outcome as it
//! completes. `--resume` (requires `--csv`) skips experiments the
//! journal shows as done with a matching config fingerprint, so an
//! interrupted campaign picks up where it died.
//!
//! Failures don't sink the campaign: a panicking or aborted run is
//! quarantined into `DIR/failures.jsonl` (with a one-line `simrun`
//! replay command) and its experiment is journaled as `failed` so a
//! later `--resume` retries it, while the remaining experiments run to
//! completion.
//!
//! Exit codes: `0` clean, `1` runtime failure (I/O error, or any
//! quarantined run), `2` usage error.

use alert_bench::figures::{
    analytic, anonymity, attacks, claims, faults, participants, performance, zone,
};
use alert_bench::{
    drain_failures, fingerprint, sweep_point, write_atomic, EntryStatus, FailureEntry, FailureSink,
    FigureTable, Journal, ManifestEntry, ProtocolChoice,
};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::time::Instant;

fn main() {
    std::process::exit(real_main());
}

fn real_main() -> i32 {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut runs = 10usize;
    let mut csv_dir: Option<PathBuf> = None;
    let mut resume = false;
    let mut targets: Vec<String> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--runs" => {
                runs = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die_usage("--runs needs a positive integer"));
            }
            "--csv" => {
                csv_dir = Some(PathBuf::from(
                    it.next()
                        .unwrap_or_else(|| die_usage("--csv needs a directory")),
                ));
            }
            "--resume" => resume = true,
            "--progress" => alert_bench::set_progress(true),
            "--help" | "-h" => {
                print_usage();
                return 0;
            }
            other if other.starts_with('-') => {
                die_usage(&format!("unknown flag '{other}'"));
            }
            other => targets.push(other.to_string()),
        }
    }
    if targets.is_empty() {
        print_usage();
        return 2;
    }
    if resume && csv_dir.is_none() {
        die_usage("--resume requires --csv (the journal lives in the CSV directory)");
    }
    if targets.iter().any(|t| t == "all") {
        targets = ALL.iter().map(|s| s.to_string()).collect();
    }
    // Validate the whole campaign up front: an unknown experiment is a
    // usage error and must fail before any work (or journal writes).
    for t in &targets {
        if !is_known(t) {
            die_usage(&format!("unknown experiment '{t}'"));
        }
    }

    let mut journal = match &csv_dir {
        Some(dir) => {
            if let Err(e) = std::fs::create_dir_all(dir) {
                return fail(&format!("cannot create {}: {e}", dir.display()));
            }
            match Journal::open(dir) {
                Ok(j) => Some(j),
                Err(e) => return fail(&format!("cannot open manifest journal: {e}")),
            }
        }
        None => None,
    };
    let mut failure_sink = csv_dir.as_deref().map(FailureSink::new);

    println!("# ALERT reproduction — {runs} runs per data point\n");
    let mut quarantined = 0usize;
    drain_failures(); // start the campaign with a clean process-global ledger
    for t in &targets {
        let fp = fingerprint(t, runs);
        if resume {
            if let Some(j) = &journal {
                if j.completed(t, fp) {
                    eprintln!("[resume] {t}: already journaled as done, skipping");
                    continue;
                }
            }
        }
        let start = Instant::now();
        let rendered = catch_unwind(AssertUnwindSafe(|| render(t, runs)));
        let mut failures: Vec<FailureEntry> = drain_failures()
            .into_iter()
            .map(|r| FailureEntry::from_record(t, r))
            .collect();
        match rendered {
            Ok(out) => {
                match out {
                    Rendered::Text(text) => print!("{text}"),
                    Rendered::Table(table) => {
                        print!("{}", table.render());
                        if let Some(dir) = &csv_dir {
                            let path = dir.join(format!("{t}.csv"));
                            if let Err(e) = write_atomic(&path, &table.to_csv()) {
                                return fail(&format!("cannot write {}: {e}", path.display()));
                            }
                        }
                    }
                }
                eprintln!("[{t}] done in {:.1}s", start.elapsed().as_secs_f64());
            }
            Err(payload) => {
                // The experiment itself died (not just one run of a
                // sweep). Quarantine it and keep the campaign going.
                let msg = panic_message(payload);
                failures.push(FailureEntry {
                    target: t.clone(),
                    protocol: "-".to_owned(),
                    nodes: 0,
                    seed: 0,
                    error: format!("panicked: {msg}"),
                    replay: format!("repro {t} --runs {runs}"),
                });
                eprintln!(
                    "[{t}] FAILED after {:.1}s: panicked: {msg}",
                    start.elapsed().as_secs_f64()
                );
            }
        }
        let status = if failures.is_empty() {
            EntryStatus::Done
        } else {
            EntryStatus::Failed
        };
        quarantined += failures.len();
        if let Some(sink) = &mut failure_sink {
            for f in &failures {
                if let Err(e) = sink.append(f) {
                    return fail(&format!("cannot write failure report: {e}"));
                }
            }
        }
        if let Some(j) = &mut journal {
            let entry = ManifestEntry {
                target: t.clone(),
                fingerprint: fp,
                runs,
                status,
                wall_s: start.elapsed().as_secs_f64(),
            };
            if let Err(e) = j.record(entry) {
                return fail(&format!("cannot append to manifest journal: {e}"));
            }
        }
    }
    if quarantined > 0 {
        eprintln!(
            "error: {quarantined} failure(s) quarantined{}",
            match &csv_dir {
                Some(dir) => format!(" — see {}", dir.join(alert_bench::FAILURES_FILE).display()),
                None => String::new(),
            }
        );
        return 1;
    }
    0
}

/// A rendered experiment: a pre-formatted text block (Table 1) or a
/// structured table (everything else, CSV-exportable).
enum Rendered {
    Text(String),
    Table(FigureTable),
}

const ALL: [&str; 26] = [
    "table1",
    "fig5c",
    "anonymity-vs-time",
    "fig7a",
    "fig7b",
    "fig9a",
    "fig9b",
    "fig10a",
    "fig10b",
    "fig11",
    "fig12",
    "fig13a",
    "fig13b",
    "fig14a",
    "fig14b",
    "fig15a",
    "fig15b",
    "fig16a",
    "fig16b",
    "fig17",
    "claim-dos",
    "claim-interception",
    "claim-defense-cost",
    "claim-energy",
    "panorama",
    "churn",
];

/// Hidden fault-drill targets (not in `ALL`, so never part of a normal
/// campaign): deterministic planted failures that the resilience tests
/// and the CI resume-smoke job use to prove quarantine works end to
/// end.
const DRILLS: [&str; 2] = ["__panic-point", "__panic-experiment"];

fn is_known(target: &str) -> bool {
    ALL.contains(&target) || DRILLS.contains(&target)
}

fn render(target: &str, runs: usize) -> Rendered {
    match target {
        "table1" => Rendered::Text(attacks::table1()),
        "fig5c" => Rendered::Table(attacks::fig5c(runs)),
        "anonymity-vs-time" => Rendered::Table(anonymity::anonymity_vs_time(runs)),
        "fig7a" => Rendered::Table(analytic::fig7a()),
        "fig7b" => Rendered::Table(analytic::fig7b()),
        "fig9a" => Rendered::Table(analytic::fig9a()),
        "fig9b" => Rendered::Table(analytic::fig9b()),
        "fig10a" => Rendered::Table(participants::fig10a(runs)),
        "fig10b" => Rendered::Table(participants::fig10b(runs)),
        "fig11" => Rendered::Table(participants::fig11(runs)),
        "fig12" => Rendered::Table(zone::fig12(runs)),
        "fig13a" => Rendered::Table(zone::fig13a(runs)),
        "fig13b" => Rendered::Table(zone::fig13b(runs)),
        "fig14a" => Rendered::Table(performance::fig14a(runs)),
        "fig14b" => Rendered::Table(performance::fig14b(runs)),
        "fig15a" => Rendered::Table(performance::fig15a(runs)),
        "fig15b" => Rendered::Table(performance::fig15b(runs)),
        "fig16a" => Rendered::Table(performance::fig16a(runs)),
        "fig16b" => Rendered::Table(performance::fig16b(runs)),
        "fig17" => Rendered::Table(performance::fig17(runs)),
        "claim-dos" => Rendered::Table(claims::claim_dos(runs)),
        "claim-interception" => Rendered::Table(claims::claim_interception(runs)),
        "claim-defense-cost" => Rendered::Table(claims::claim_defense_cost(runs)),
        "claim-energy" => Rendered::Table(claims::claim_energy(runs)),
        "panorama" => Rendered::Table(claims::panorama(runs)),
        "churn" => Rendered::Table(faults::churn_sweep(runs)),
        "__panic-point" => Rendered::Table(panic_point_drill(runs)),
        "__panic-experiment" => panic!("planted panic: __panic-experiment"),
        other => unreachable!("target '{other}' passed is_known but has no renderer"),
    }
}

/// The `__panic-point` drill: a real (tiny) sweep whose metric
/// extractor panics on every run, so each point is quarantined through
/// the production isolation path and the table renders with zero
/// surviving samples.
fn panic_point_drill(runs: usize) -> FigureTable {
    let mut cfg = alert_sim::ScenarioConfig::default()
        .with_nodes(30)
        .with_duration(5.0);
    cfg.traffic.pairs = 2;
    let stat = sweep_point(ProtocolChoice::Gpsr, &cfg, runs.min(2), |_| {
        panic!("planted panic: __panic-point")
    });
    let mut t = FigureTable::new(
        "__panic-point — planted per-run failure drill (not a paper figure)",
        "point",
        vec!["delivery".into()],
    );
    t.row("0".to_owned(), vec![format!("{stat:.3}")]);
    t
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

fn print_usage() {
    eprintln!("usage: repro <experiment...|all> [--runs N] [--csv DIR] [--resume] [--progress]");
    eprintln!("experiments: {}", ALL.join(" "));
    eprintln!("exit codes: 0 ok, 1 runtime failure (see failures.jsonl), 2 usage");
}

/// Usage error: complain and exit 2 before any campaign work.
fn die_usage(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}

/// Runtime failure (I/O, quarantined runs): complain and return exit
/// code 1 so the caller's `real_main` result reaches `process::exit`.
fn fail(msg: &str) -> i32 {
    eprintln!("error: {msg}");
    1
}

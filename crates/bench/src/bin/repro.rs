//! `repro` — regenerates the ALERT paper's tables and figures.
//!
//! ```text
//! repro <experiment...|all> [--runs N] [--jobs N] [--csv DIR] [--resume] [--progress]
//!
//! experiments:
//!   table1  fig5c  anonymity-vs-time  fig7a  fig7b  fig9a  fig9b
//!   fig10a  fig10b fig11  fig12  fig13a fig13b
//!   fig14a  fig14b fig15a fig15b fig16a fig16b fig17
//!   claim-dos claim-interception claim-defense-cost claim-energy
//!   panorama churn
//! ```
//!
//! `--runs` controls the Monte-Carlo repetitions per data point (the
//! paper averages 30 runs; the default here is 10 to keep a full `all`
//! pass in minutes — pass `--runs 30` for the paper's setting).
//! `--progress` prints one `[progress]` line per data point on stderr
//! (protocol, run count, wall-clock seconds) so long sweeps are
//! watchable.
//!
//! `--jobs N` fans the campaign across a fixed-size worker pool with
//! leased work units, capped retry + exponential backoff, and a single
//! committer that merges results in campaign order — stdout, CSVs, the
//! journal, and the failure report are byte-identical to `--jobs 1`
//! regardless of scheduling, and a crashed worker loses only its
//! in-flight experiment (see DESIGN.md § 12).
//!
//! With `--csv DIR` every table is additionally written to
//! `DIR/<experiment>.csv` — atomically (temp file + rename), so a
//! killed campaign never leaves a truncated CSV — and a manifest
//! journal (`manifest.jsonl`, schema `alert-repro-manifest/2` with
//! lease + done/failed records) records each experiment's claim and
//! outcome as it happens. `--resume` (requires `--csv`) skips
//! experiments the journal shows as done with a matching config
//! fingerprint and reclaims leases a dead run orphaned, so an
//! interrupted campaign picks up where it died. An advisory
//! `.orchestrator.lock` asserts single-orchestrator ownership of the
//! directory; a second orchestrator exits 2 with a diagnostic instead
//! of corrupting the journal. Pool health counters (`pool.leases`,
//! `pool.lease_expired`, `pool.retries`, ...) are sampled into
//! `DIR/pool-timeseries.jsonl` (`alert-timeseries/1`, readable by
//! `tracequery rates`).
//!
//! Failures don't sink the campaign: a panicking or aborted run is
//! quarantined into `DIR/failures.jsonl` (with a one-line `simrun`
//! replay command) and its experiment is journaled as `failed` so a
//! later `--resume` retries it, while the remaining experiments run to
//! completion.
//!
//! Exit codes: `0` clean, `1` runtime failure (I/O error, or any
//! quarantined run), `2` usage error.

use alert_bench::figures::{
    analytic, anonymity, attacks, claims, faults, participants, performance, zone,
};
use alert_bench::{
    drain_failures, fingerprint, run_pool, set_failure_scope, sweep_point, write_atomic, DirLock,
    EntryStatus, FailureEntry, FailureSink, FigureTable, Journal, LeaseEntry, LockError,
    ManifestEntry, PoolOptions, ProtocolChoice, UnitOutcome, WorkUnit,
};
use std::path::PathBuf;
use std::sync::Mutex;
use std::time::{Duration, Instant};

fn main() {
    std::process::exit(real_main());
}

fn real_main() -> i32 {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut runs = 10usize;
    let mut jobs = 1usize;
    let mut lease_s = 600.0f64;
    let mut max_attempts = 3u32;
    let mut csv_dir: Option<PathBuf> = None;
    let mut resume = false;
    let mut targets: Vec<String> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--runs" => {
                runs = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die_usage("--runs needs a positive integer"));
            }
            "--jobs" => {
                jobs = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n >= 1)
                    .unwrap_or_else(|| die_usage("--jobs needs a positive integer"));
            }
            // Hidden pool tuning knobs (the integration tests shrink the
            // lease to exercise expiry; defaults are production values).
            "--lease-s" => {
                lease_s = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&s: &f64| s.is_finite() && s > 0.0)
                    .unwrap_or_else(|| die_usage("--lease-s needs a positive number"));
            }
            "--max-attempts" => {
                max_attempts = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n >= 1)
                    .unwrap_or_else(|| die_usage("--max-attempts needs a positive integer"));
            }
            "--csv" => {
                csv_dir = Some(PathBuf::from(
                    it.next()
                        .unwrap_or_else(|| die_usage("--csv needs a directory")),
                ));
            }
            "--resume" => resume = true,
            "--progress" => alert_bench::set_progress(true),
            "--help" | "-h" => {
                print_usage();
                return 0;
            }
            other if other.starts_with('-') => {
                die_usage(&format!("unknown flag '{other}'"));
            }
            other => targets.push(other.to_string()),
        }
    }
    if targets.is_empty() {
        print_usage();
        return 2;
    }
    if resume && csv_dir.is_none() {
        die_usage("--resume requires --csv (the journal lives in the CSV directory)");
    }
    if targets.iter().any(|t| t == "all") {
        targets = ALL.iter().map(|s| s.to_string()).collect();
    }
    // Validate the whole campaign up front: an unknown experiment is a
    // usage error and must fail before any work (or journal writes).
    for t in &targets {
        if !is_known(t) {
            die_usage(&format!("unknown experiment '{t}'"));
        }
    }

    // Single-orchestrator ownership of the output directory: the
    // journal's torn-tail healing and the staged merge both assume one
    // committer, so a concurrent orchestrator is a usage error.
    let mut _lock: Option<DirLock> = None;
    if let Some(dir) = &csv_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            return fail(&format!("cannot create {}: {e}", dir.display()));
        }
        match DirLock::acquire(dir) {
            Ok(l) => _lock = Some(l),
            Err(e @ LockError::Busy { .. }) => {
                eprintln!(
                    "error: {e} ({}); wait for it to finish or remove the stale lock file",
                    dir.join(alert_bench::LOCK_FILE).display()
                );
                return 2;
            }
            Err(LockError::Io(e)) => return fail(&format!("cannot lock output directory: {e}")),
        }
    }

    let journal = match &csv_dir {
        Some(dir) => match Journal::open(dir) {
            Ok(j) => Some(j),
            Err(e) => return fail(&format!("cannot open manifest journal: {e}")),
        },
        None => None,
    };
    if resume {
        if let Some(j) = &journal {
            let orphans = j.orphaned_leases().len();
            if orphans > 0 {
                eprintln!("[resume] reclaiming {orphans} orphaned lease(s) from a previous run");
            }
        }
    }
    let mut failure_sink = csv_dir.as_deref().map(FailureSink::new);

    // The campaign as pool work units, in canonical (command-line)
    // order; resume skips are decided up front on the main thread so
    // the `[resume]` lines keep their serial order.
    let mut units: Vec<WorkUnit<usize>> = Vec::new();
    for t in &targets {
        let fp = fingerprint(t, runs);
        if resume {
            if let Some(j) = &journal {
                if j.completed(t, fp) {
                    eprintln!("[resume] {t}: already journaled as done, skipping");
                    continue;
                }
            }
        }
        units.push(WorkUnit {
            label: t.clone(),
            fingerprint: fp,
            input: units.len(),
        });
    }

    let stage_dir = csv_dir.as_ref().map(|d| d.join(".stage"));
    if let Some(sd) = &stage_dir {
        if let Err(e) = std::fs::create_dir_all(sd) {
            return fail(&format!("cannot create {}: {e}", sd.display()));
        }
        // A kill -9 mid-campaign leaves staged CSVs behind (the end-of-
        // run cleanup never happened). Entries whose fingerprint is
        // already journaled terminal will never be renamed into place —
        // sweep them so staging debris doesn't accumulate across
        // crashes. In-flight fingerprints are left alone: this run
        // re-stages (and atomically overwrites) them anyway.
        if let Some(j) = &journal {
            let swept = sweep_stale_stage(sd, j);
            if swept > 0 {
                eprintln!("[resume] swept {swept} stale staged artifact(s) from a previous run");
            }
        }
    }

    // Each worker gets a private rayon pool whose threads carry the
    // worker's failure scope, so concurrent sweeps quarantine into
    // separate ledger partitions (cores are split across workers).
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let threads_per = (cores / jobs).max(1);
    let mut sweep_pools = Vec::with_capacity(jobs);
    for w in 0..jobs {
        match rayon::ThreadPoolBuilder::new()
            .num_threads(threads_per)
            .start_handler(move |_| set_failure_scope(w + 1))
            .build()
        {
            Ok(p) => sweep_pools.push(p),
            Err(e) => return fail(&format!("cannot build sweep thread pool: {e}")),
        }
    }

    println!("# ALERT reproduction — {runs} runs per data point\n");
    drain_failures(); // start the campaign with a clean ledger partition

    let journal = Mutex::new(journal);
    let mut quarantined = 0usize;
    let mut fatal: Option<String> = None;

    let opts = PoolOptions {
        jobs,
        lease: Duration::from_secs_f64(lease_s),
        max_attempts,
        sample_every: csv_dir.as_ref().map(|_| Duration::from_secs(5)),
        ..PoolOptions::default()
    };

    let exec = |w: usize, unit: &WorkUnit<usize>| -> Result<ExpOutput, String> {
        let target = &unit.label;
        set_failure_scope(w + 1);
        drop(drain_failures()); // leftovers of a previous failed attempt
        let start = Instant::now();
        // Run the experiment inside this worker's private rayon pool so
        // every sweep thread shares the worker's failure scope. A panic
        // propagates out of `install` and is caught by the pool harness,
        // consuming one attempt.
        let rendered = sweep_pools[w].install(|| render(target, runs));
        let mut failures: Vec<FailureEntry> = drain_failures()
            .into_iter()
            .map(|r| FailureEntry::from_record(target, r))
            .collect();
        // Rayon completion order is scheduling-dependent even at
        // --jobs 1; canonicalize so the failure report is deterministic.
        failures.sort_by(|a, b| {
            (&a.protocol, a.nodes, a.seed, &a.error).cmp(&(&b.protocol, b.nodes, b.seed, &b.error))
        });
        let (text, staged) = match rendered {
            Rendered::Text(text) => (text, None),
            Rendered::Table(table) => {
                let staged = match &stage_dir {
                    Some(sd) => {
                        // Keyed by unit index + fingerprint (+ worker, so
                        // a reclaimed lease's straggler can't collide):
                        // duplicate targets on the command line stay
                        // distinct.
                        let path = sd.join(format!(
                            "{:03}-w{w}-{:016x}.csv",
                            unit.input, unit.fingerprint
                        ));
                        write_atomic(&path, &table.to_csv())
                            .map_err(|e| format!("cannot stage {}: {e}", path.display()))?;
                        Some(path)
                    }
                    None => None,
                };
                (table.render(), staged)
            }
        };
        Ok(ExpOutput {
            text,
            staged,
            failures,
            wall_s: start.elapsed().as_secs_f64(),
        })
    };

    let on_lease = |unit: &WorkUnit<usize>, worker: usize, attempt: u32, deadline_s: f64| {
        if let Some(j) = journal.lock().expect("journal lock").as_mut() {
            let lease = LeaseEntry {
                target: unit.label.clone(),
                fingerprint: unit.fingerprint,
                worker,
                attempt,
                deadline_s,
            };
            if let Err(e) = j.record_lease(lease) {
                eprintln!(
                    "[pool] warning: cannot journal lease for {}: {e}",
                    unit.label
                );
            }
        }
    };

    let commit = |unit: &WorkUnit<usize>, outcome: UnitOutcome<ExpOutput>| {
        if fatal.is_some() {
            return; // first fatal error wins; drop the rest quietly
        }
        let t = &unit.label;
        let (status, wall_s, failures) = match outcome {
            UnitOutcome::Completed(out) => {
                print!("{}", out.text);
                if let Some(stage) = &out.staged {
                    let path = csv_dir
                        .as_ref()
                        .expect("staged artifact implies --csv")
                        .join(format!("{t}.csv"));
                    if let Err(e) = std::fs::rename(stage, &path) {
                        fatal = Some(format!("cannot write {}: {e}", path.display()));
                        return;
                    }
                }
                eprintln!("[{t}] done in {:.1}s", out.wall_s);
                let status = if out.failures.is_empty() {
                    EntryStatus::Done
                } else {
                    EntryStatus::Failed
                };
                (status, out.wall_s, out.failures)
            }
            UnitOutcome::Failed { error, attempts } => {
                // The experiment itself died on every attempt (not just
                // one run of a sweep). Quarantine it and keep going.
                eprintln!("[{t}] FAILED after {attempts} attempt(s): {error}");
                let failure = FailureEntry {
                    target: t.clone(),
                    protocol: "-".to_owned(),
                    nodes: 0,
                    seed: 0,
                    error,
                    replay: format!("repro {t} --runs {runs}"),
                };
                (EntryStatus::Failed, 0.0, vec![failure])
            }
        };
        quarantined += failures.len();
        if let Some(sink) = &mut failure_sink {
            for f in &failures {
                if let Err(e) = sink.append(f) {
                    fatal = Some(format!("cannot write failure report: {e}"));
                    return;
                }
            }
        }
        if let Some(j) = journal.lock().expect("journal lock").as_mut() {
            let entry = ManifestEntry {
                target: t.clone(),
                fingerprint: unit.fingerprint,
                runs,
                status,
                wall_s,
            };
            if let Err(e) = j.record(entry) {
                fatal = Some(format!("cannot append to manifest journal: {e}"));
            }
        }
    };

    let stats = run_pool(&units, &opts, exec, on_lease, commit);

    if let Some(dir) = &csv_dir {
        if let Some(series) = &stats.timeseries {
            let path = dir.join(POOL_TIMESERIES_FILE);
            if let Err(e) = write_atomic(&path, &series.to_jsonl()) {
                return fail(&format!("cannot write {}: {e}", path.display()));
            }
        }
        // Staged artifacts are renamed away on commit; anything left is
        // debris from failed attempts.
        if let Some(sd) = &stage_dir {
            let _ = std::fs::remove_dir_all(sd);
        }
    }
    eprintln!(
        "[pool] jobs={jobs} committed={} failed={} leases={} lease_expired={} \
         retries={} duplicates={}",
        stats.completed,
        stats.failed,
        stats.leases,
        stats.lease_expired,
        stats.retries,
        stats.duplicates
    );

    if let Some(msg) = fatal {
        return fail(&msg);
    }
    if quarantined > 0 {
        eprintln!(
            "error: {quarantined} failure(s) quarantined{}",
            match &csv_dir {
                Some(dir) => format!(" — see {}", dir.join(alert_bench::FAILURES_FILE).display()),
                None => String::new(),
            }
        );
        return 1;
    }
    0
}

/// File name of the pool health timeseries inside the `--csv` dir.
const POOL_TIMESERIES_FILE: &str = "pool-timeseries.jsonl";

/// Removes staged `NNN-wW-FFFFFFFFFFFFFFFF.csv` files whose fingerprint
/// already has a terminal journal entry — debris a crashed campaign can
/// never promote. Returns how many entries were removed; unreadable or
/// foreign file names are left untouched.
fn sweep_stale_stage(stage_dir: &std::path::Path, journal: &Journal) -> usize {
    let Ok(entries) = std::fs::read_dir(stage_dir) else {
        return 0;
    };
    let mut swept = 0;
    for entry in entries.flatten() {
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some(hex) = name
            .strip_suffix(".csv")
            .and_then(|stem| stem.rsplit('-').next())
        else {
            continue;
        };
        let Ok(fp) = u64::from_str_radix(hex, 16) else {
            continue;
        };
        let terminal = journal.entries().iter().any(|e| e.fingerprint == fp);
        if terminal && std::fs::remove_file(entry.path()).is_ok() {
            swept += 1;
        }
    }
    swept
}

/// What one executed experiment hands the committer: the stdout block,
/// the staged CSV (if any), the quarantined failures of its sweeps, and
/// its wall time.
struct ExpOutput {
    text: String,
    staged: Option<PathBuf>,
    failures: Vec<FailureEntry>,
    wall_s: f64,
}

/// A rendered experiment: a pre-formatted text block (Table 1) or a
/// structured table (everything else, CSV-exportable).
enum Rendered {
    Text(String),
    Table(FigureTable),
}

const ALL: [&str; 26] = [
    "table1",
    "fig5c",
    "anonymity-vs-time",
    "fig7a",
    "fig7b",
    "fig9a",
    "fig9b",
    "fig10a",
    "fig10b",
    "fig11",
    "fig12",
    "fig13a",
    "fig13b",
    "fig14a",
    "fig14b",
    "fig15a",
    "fig15b",
    "fig16a",
    "fig16b",
    "fig17",
    "claim-dos",
    "claim-interception",
    "claim-defense-cost",
    "claim-energy",
    "panorama",
    "churn",
];

/// Hidden fault-drill targets (not in `ALL`, so never part of a normal
/// campaign): deterministic planted failures that the resilience tests
/// and the CI resume-smoke/pool-smoke jobs use to prove quarantine and
/// crash recovery work end to end.
const DRILLS: [&str; 2] = ["__panic-point", "__panic-experiment"];

fn is_known(target: &str) -> bool {
    ALL.contains(&target) || DRILLS.contains(&target)
}

fn render(target: &str, runs: usize) -> Rendered {
    match target {
        "table1" => Rendered::Text(attacks::table1()),
        "fig5c" => Rendered::Table(attacks::fig5c(runs)),
        "anonymity-vs-time" => Rendered::Table(anonymity::anonymity_vs_time(runs)),
        "fig7a" => Rendered::Table(analytic::fig7a()),
        "fig7b" => Rendered::Table(analytic::fig7b()),
        "fig9a" => Rendered::Table(analytic::fig9a()),
        "fig9b" => Rendered::Table(analytic::fig9b()),
        "fig10a" => Rendered::Table(participants::fig10a(runs)),
        "fig10b" => Rendered::Table(participants::fig10b(runs)),
        "fig11" => Rendered::Table(participants::fig11(runs)),
        "fig12" => Rendered::Table(zone::fig12(runs)),
        "fig13a" => Rendered::Table(zone::fig13a(runs)),
        "fig13b" => Rendered::Table(zone::fig13b(runs)),
        "fig14a" => Rendered::Table(performance::fig14a(runs)),
        "fig14b" => Rendered::Table(performance::fig14b(runs)),
        "fig15a" => Rendered::Table(performance::fig15a(runs)),
        "fig15b" => Rendered::Table(performance::fig15b(runs)),
        "fig16a" => Rendered::Table(performance::fig16a(runs)),
        "fig16b" => Rendered::Table(performance::fig16b(runs)),
        "fig17" => Rendered::Table(performance::fig17(runs)),
        "claim-dos" => Rendered::Table(claims::claim_dos(runs)),
        "claim-interception" => Rendered::Table(claims::claim_interception(runs)),
        "claim-defense-cost" => Rendered::Table(claims::claim_defense_cost(runs)),
        "claim-energy" => Rendered::Table(claims::claim_energy(runs)),
        "panorama" => Rendered::Table(claims::panorama(runs)),
        "churn" => Rendered::Table(faults::churn_sweep(runs)),
        "__panic-point" => Rendered::Table(panic_point_drill(runs)),
        "__panic-experiment" => panic!("planted panic: __panic-experiment"),
        other => unreachable!("target '{other}' passed is_known but has no renderer"),
    }
}

/// The `__panic-point` drill: a real (tiny) sweep whose metric
/// extractor panics on every run, so each point is quarantined through
/// the production isolation path and the table renders with zero
/// surviving samples.
fn panic_point_drill(runs: usize) -> FigureTable {
    let mut cfg = alert_sim::ScenarioConfig::default()
        .with_nodes(30)
        .with_duration(5.0);
    cfg.traffic.pairs = 2;
    let stat = sweep_point(ProtocolChoice::Gpsr, &cfg, runs.min(2), |_| {
        panic!("planted panic: __panic-point")
    });
    let mut t = FigureTable::new(
        "__panic-point — planted per-run failure drill (not a paper figure)",
        "point",
        vec!["delivery".into()],
    );
    t.row("0".to_owned(), vec![format!("{stat:.3}")]);
    t
}

fn print_usage() {
    eprintln!(
        "usage: repro <experiment...|all> [--runs N] [--jobs N] [--csv DIR] [--resume] [--progress]"
    );
    eprintln!("experiments: {}", ALL.join(" "));
    eprintln!("exit codes: 0 ok, 1 runtime failure (see failures.jsonl), 2 usage");
}

/// Usage error: complain and exit 2 before any campaign work.
fn die_usage(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}

/// Runtime failure (I/O, quarantined runs): complain and return exit
/// code 1 so the caller's `real_main` result reaches `process::exit`.
fn fail(msg: &str) -> i32 {
    eprintln!("error: {msg}");
    1
}

//! Plain-text table rendering for the `repro` harness output.

/// A titled table of labelled series: one row per x value, one column per
/// series — the text equivalent of one paper figure.
#[derive(Debug, Clone)]
pub struct FigureTable {
    /// Figure identifier and caption, e.g. "Fig. 14a — latency per packet".
    pub title: String,
    /// Label of the x axis.
    pub x_label: String,
    /// Series labels (column headers).
    pub series: Vec<String>,
    /// Rows: `(x, values)` with one value per series (NaN = missing).
    pub rows: Vec<(String, Vec<String>)>,
    /// Free-form notes (expected shape, paper reference).
    pub notes: Vec<String>,
}

impl FigureTable {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, x_label: impl Into<String>, series: Vec<String>) -> Self {
        FigureTable {
            title: title.into(),
            x_label: x_label.into(),
            series,
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Appends one row.
    pub fn row(&mut self, x: impl Into<String>, values: Vec<String>) {
        assert_eq!(
            values.len(),
            self.series.len(),
            "row width must match series count"
        );
        self.rows.push((x.into(), values));
    }

    /// Appends a note line printed under the table.
    pub fn note(&mut self, text: impl Into<String>) {
        self.notes.push(text.into());
    }

    /// Renders the table as CSV (header row + data rows; notes omitted).
    pub fn to_csv(&self) -> String {
        let esc = |s: &str| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_owned()
            }
        };
        let mut out = String::new();
        out.push_str(&esc(&self.x_label));
        for col in &self.series {
            out.push(',');
            out.push_str(&esc(col));
        }
        out.push('\n');
        for (x, values) in &self.rows {
            out.push_str(&esc(x));
            for v in values {
                out.push(',');
                out.push_str(&esc(v));
            }
            out.push('\n');
        }
        out
    }

    /// Renders the table as aligned plain text.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = Vec::with_capacity(self.series.len() + 1);
        widths.push(
            self.rows
                .iter()
                .map(|(x, _)| x.len())
                .chain(std::iter::once(self.x_label.len()))
                .max()
                .unwrap_or(0),
        );
        for (i, s) in self.series.iter().enumerate() {
            let w = self
                .rows
                .iter()
                .map(|(_, v)| v[i].len())
                .chain(std::iter::once(s.len()))
                .max()
                .unwrap_or(0);
            widths.push(w);
        }
        let mut out = String::new();
        out.push_str(&format!("## {}\n\n", self.title));
        out.push_str(&format!("{:<w$}", self.x_label, w = widths[0]));
        for (i, s) in self.series.iter().enumerate() {
            out.push_str(&format!("  {:>w$}", s, w = widths[i + 1]));
        }
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * self.series.len();
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for (x, values) in &self.rows {
            out.push_str(&format!("{:<w$}", x, w = widths[0]));
            for (i, v) in values.iter().enumerate() {
                out.push_str(&format!("  {:>w$}", v, w = widths[i + 1]));
            }
            out.push('\n');
        }
        for n in &self.notes {
            out.push_str(&format!("  note: {n}\n"));
        }
        out.push('\n');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = FigureTable::new(
            "Fig. X — demo",
            "nodes",
            vec!["ALERT".into(), "GPSR".into()],
        );
        t.row("50", vec!["1.23 ±0.04".into(), "0.98 ±0.01".into()]);
        t.row("200", vec!["1.10 ±0.02".into(), "0.99 ±0.00".into()]);
        t.note("expected: ALERT above GPSR");
        let text = t.render();
        assert!(text.contains("## Fig. X — demo"));
        assert!(text.contains("ALERT"));
        assert!(text.contains("note: expected"));
        // Every data line has the same width.
        let lines: Vec<&str> = text.lines().filter(|l| l.contains('±')).collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[0].len(), lines[1].len());
    }

    #[test]
    fn csv_roundtrips_columns() {
        let mut t = FigureTable::new("t", "x", vec!["a,b".into(), "c".into()]);
        t.row("1", vec!["1.0".into(), "quo\"te".into()]);
        let csv = t.to_csv();
        let mut lines = csv.lines();
        assert_eq!(lines.next().unwrap(), "x,\"a,b\",c");
        assert_eq!(lines.next().unwrap(), "1,1.0,\"quo\"\"te\"");
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn rejects_ragged_rows() {
        let mut t = FigureTable::new("t", "x", vec!["a".into(), "b".into()]);
        t.row("1", vec!["only-one".into()]);
    }
}

//! Fault-tolerant parallel campaign execution: a leased work queue, a
//! fixed-size worker pool, and a single committer that merges results in
//! canonical order.
//!
//! This is the robustness layer the `repro` and `simcheck` binaries
//! share for `--jobs N`. The design splits into two halves:
//!
//! * [`LeaseQueue`] — a **pure** state machine over work-unit states
//!   (pending → leased → done/failed) with an injected clock. Workers
//!   claim units via time-bounded leases; an expired lease is re-queued
//!   with capped retry and exponential backoff, so a stuck or dead
//!   worker loses only its in-flight unit. Completion is idempotent:
//!   duplicate completions (a reclaimed unit finishing twice) are
//!   deduped, so at-least-once execution never double-counts. Being
//!   pure, every interleaving of claim/expire/complete/fail events is
//!   directly testable (see the proptest in `tests/pool_props.rs`).
//! * [`run_pool`] — the threaded harness around it: `jobs` worker
//!   threads execute units (each unit panic-isolated), and the **caller
//!   thread is the single committer**, receiving finished units over a
//!   channel and committing them strictly in canonical (submission)
//!   order. Scheduling therefore never reorders output: a parallel run
//!   commits byte-identical artifacts to `--jobs 1`.
//!
//! # Determinism contract
//!
//! Work units must be **pure functions of their fingerprint** — seeded
//! from config, never from claim order, wall clock, or worker identity.
//! Under that contract the pool guarantees:
//!
//! 1. `commit` is called at most once per unit, in submission order.
//! 2. The committed outcome of a unit is independent of `jobs`, lease
//!    expiries, retries, and thread scheduling.
//! 3. A unit that fails deterministically is retried up to
//!    `max_attempts` times (backoff between attempts) and then committed
//!    as failed — one terminal outcome either way.
//!
//! Wall-clock-dependent observability (the optional health timeseries,
//! stderr chatter) is deliberately outside the contract.

use crate::runner::panic_message;
use alert_sim::{MetricsTimeseries, RegistrySnapshot};
use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc;
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------
// Work units and pool options
// ---------------------------------------------------------------------

/// One unit of campaign work. Canonical order is the submission order
/// of the `units` slice given to [`run_pool`]; the fingerprint is the
/// unit's stable identity in journals and staged artifacts.
#[derive(Debug, Clone)]
pub struct WorkUnit<I> {
    /// Human-readable name (experiment target, `case-0042`, ...).
    pub label: String,
    /// Stable identity: the FNV-1a config fingerprint the unit is
    /// keyed — and seeded — by.
    pub fingerprint: u64,
    /// Task payload handed to the executor.
    pub input: I,
}

/// Tuning knobs for [`run_pool`].
#[derive(Debug, Clone)]
pub struct PoolOptions {
    /// Fixed worker-thread count (min 1).
    pub jobs: usize,
    /// Lease duration: a claim not completed within this window may be
    /// reclaimed by another worker. Generous by default — in-process it
    /// only matters when a worker thread dies or wedges.
    pub lease: Duration,
    /// Maximum execution attempts per unit (min 1); a unit failing this
    /// many times (errors, panics, or lease expiries) is committed as
    /// failed.
    pub max_attempts: u32,
    /// Backoff before retry attempt `a` runs: `base * 2^(a-1)`, capped
    /// at [`PoolOptions::backoff_cap`].
    pub backoff_base: Duration,
    /// Upper bound on the exponential backoff.
    pub backoff_cap: Duration,
    /// Cooperative cancellation deadline (e.g. a `--max-wall-s`
    /// budget): workers stop claiming once it passes; already-running
    /// units finish and commit.
    pub deadline: Option<Instant>,
    /// Sample pool health counters (`pool.*`) into an
    /// `alert-timeseries/1` series at this wall-clock cadence.
    pub sample_every: Option<Duration>,
}

impl Default for PoolOptions {
    fn default() -> PoolOptions {
        PoolOptions {
            jobs: 1,
            lease: Duration::from_secs(600),
            max_attempts: 3,
            backoff_base: Duration::from_millis(100),
            backoff_cap: Duration::from_secs(5),
            deadline: None,
            sample_every: None,
        }
    }
}

/// Terminal outcome of one unit, as handed to the commit callback.
#[derive(Debug)]
pub enum UnitOutcome<O> {
    /// The unit executed to completion; here is its output.
    Completed(O),
    /// Every attempt failed (error, panic, or lease expiry).
    Failed {
        /// Last failure message.
        error: String,
        /// Attempts consumed.
        attempts: u32,
    },
}

/// What a whole pool run amounted to.
#[derive(Debug, Clone)]
pub struct PoolStats {
    /// Units committed as completed.
    pub completed: usize,
    /// Units committed as failed (attempts exhausted).
    pub failed: usize,
    /// Leases granted (≥ unit count when retries happened).
    pub leases: u64,
    /// Leases that expired and were reclaimed.
    pub lease_expired: u64,
    /// Failed attempts that were re-queued for retry.
    pub retries: u64,
    /// Duplicate completions discarded by fingerprint dedupe.
    pub duplicates: u64,
    /// True when the deadline cancelled the run before all units got a
    /// terminal outcome.
    pub cancelled: bool,
    /// Health samples, when [`PoolOptions::sample_every`] was set.
    pub timeseries: Option<MetricsTimeseries>,
}

// ---------------------------------------------------------------------
// LeaseQueue: the pure state machine
// ---------------------------------------------------------------------

/// Per-unit lifecycle state.
#[derive(Debug, Clone, Copy, PartialEq)]
enum UnitState {
    /// Eligible to be claimed once `not_before` passes. `attempt` counts
    /// attempts already consumed.
    Pending { attempt: u32, not_before: f64 },
    /// Claimed by `worker` as attempt `attempt`; reclaimable after
    /// `deadline`.
    Leased {
        worker: usize,
        attempt: u32,
        deadline: f64,
    },
    /// Terminal: completed exactly once.
    Done,
    /// Terminal: attempts exhausted.
    Failed,
}

/// What a claim attempt yielded.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Claim {
    /// A unit was leased to the claiming worker.
    Unit {
        /// Canonical index of the unit.
        index: usize,
        /// 1-based attempt number this lease runs.
        attempt: u32,
    },
    /// Nothing is runnable right now; nothing can become runnable
    /// before `until` (backoff hold-downs, outstanding lease deadlines).
    Wait {
        /// Earliest time (queue clock) worth re-checking at.
        until: f64,
    },
    /// Every unit is terminal.
    Drained,
}

/// Result of reporting a completion.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Completion {
    /// First completion of this unit — the caller must forward it.
    First,
    /// The unit was already terminal (a reclaimed lease finished
    /// elsewhere); the result must be discarded.
    Duplicate,
}

/// Result of reporting a failed attempt.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FailDisposition {
    /// Re-queued; eligible again at `not_before`.
    Retry {
        /// Earliest re-claim time (queue clock).
        not_before: f64,
    },
    /// Attempts exhausted — the caller must forward the terminal
    /// failure.
    Exhausted,
    /// The unit was already terminal (raced with an expiry); discard.
    Stale,
}

/// The leased work queue: a pure, clock-injected state machine over
/// unit lifecycles. All times are seconds on an arbitrary monotonic
/// clock supplied by the caller.
#[derive(Debug)]
pub struct LeaseQueue {
    states: Vec<UnitState>,
    lease_s: f64,
    backoff_base_s: f64,
    backoff_cap_s: f64,
    max_attempts: u32,
    terminal: usize,
    leases: u64,
    lease_expired: u64,
    retries: u64,
    duplicates: u64,
}

impl LeaseQueue {
    /// A queue of `units` pending units.
    pub fn new(units: usize, opts: &PoolOptions) -> LeaseQueue {
        LeaseQueue {
            states: vec![
                UnitState::Pending {
                    attempt: 0,
                    not_before: 0.0,
                };
                units
            ],
            lease_s: opts.lease.as_secs_f64(),
            backoff_base_s: opts.backoff_base.as_secs_f64(),
            backoff_cap_s: opts.backoff_cap.as_secs_f64(),
            max_attempts: opts.max_attempts.max(1),
            terminal: 0,
            leases: 0,
            lease_expired: 0,
            retries: 0,
            duplicates: 0,
        }
    }

    /// Attempt cap the queue enforces.
    pub fn max_attempts(&self) -> u32 {
        self.max_attempts
    }

    /// Backoff before re-running attempt `attempt + 1` (attempts
    /// consumed so far): `base * 2^(attempt-1)`, capped.
    fn backoff_s(&self, attempt: u32) -> f64 {
        let exp = attempt.saturating_sub(1).min(32);
        (self.backoff_base_s * f64::from(1u32 << exp)).min(self.backoff_cap_s)
    }

    /// Re-queues (or terminally fails) every lease whose deadline has
    /// passed, returning the indices that just became terminal failures
    /// — the caller must forward those to the committer.
    pub fn expire(&mut self, now: f64) -> Vec<usize> {
        let mut exhausted = Vec::new();
        for i in 0..self.states.len() {
            if let UnitState::Leased {
                attempt, deadline, ..
            } = self.states[i]
            {
                if deadline <= now {
                    self.lease_expired += 1;
                    if attempt >= self.max_attempts {
                        self.states[i] = UnitState::Failed;
                        self.terminal += 1;
                        exhausted.push(i);
                    } else {
                        self.states[i] = UnitState::Pending {
                            attempt,
                            not_before: now + self.backoff_s(attempt),
                        };
                    }
                }
            }
        }
        exhausted
    }

    /// Claims the lowest-index runnable unit for `worker`. Run
    /// [`LeaseQueue::expire`] first so reclaimable leases are visible.
    pub fn claim(&mut self, worker: usize, now: f64) -> Claim {
        let mut wake = f64::INFINITY;
        for (i, s) in self.states.iter_mut().enumerate() {
            match *s {
                UnitState::Pending {
                    attempt,
                    not_before,
                } => {
                    if not_before <= now {
                        let attempt = attempt + 1;
                        *s = UnitState::Leased {
                            worker,
                            attempt,
                            deadline: now + self.lease_s,
                        };
                        self.leases += 1;
                        return Claim::Unit { index: i, attempt };
                    }
                    wake = wake.min(not_before);
                }
                UnitState::Leased { deadline, .. } => {
                    wake = wake.min(deadline);
                }
                UnitState::Done | UnitState::Failed => {}
            }
        }
        if self.terminal == self.states.len() {
            Claim::Drained
        } else {
            Claim::Wait { until: wake }
        }
    }

    /// Reports unit `index` completed. Only the first completion per
    /// unit counts; late completions from reclaimed leases are deduped.
    pub fn complete(&mut self, index: usize) -> Completion {
        match self.states[index] {
            UnitState::Done | UnitState::Failed => {
                self.duplicates += 1;
                Completion::Duplicate
            }
            _ => {
                self.states[index] = UnitState::Done;
                self.terminal += 1;
                Completion::First
            }
        }
    }

    /// Reports a failed attempt on unit `index`.
    pub fn fail(&mut self, index: usize, now: f64) -> FailDisposition {
        match self.states[index] {
            UnitState::Done | UnitState::Failed => FailDisposition::Stale,
            UnitState::Leased { attempt, .. } | UnitState::Pending { attempt, .. } => {
                if attempt >= self.max_attempts {
                    self.states[index] = UnitState::Failed;
                    self.terminal += 1;
                    FailDisposition::Exhausted
                } else {
                    let not_before = now + self.backoff_s(attempt);
                    self.states[index] = UnitState::Pending {
                        attempt,
                        not_before,
                    };
                    self.retries += 1;
                    FailDisposition::Retry { not_before }
                }
            }
        }
    }

    /// True when every unit is terminal.
    pub fn is_drained(&self) -> bool {
        self.terminal == self.states.len()
    }

    /// `(leases, lease_expired, retries, duplicates)` so far.
    pub fn counters(&self) -> (u64, u64, u64, u64) {
        (
            self.leases,
            self.lease_expired,
            self.retries,
            self.duplicates,
        )
    }
}

// ---------------------------------------------------------------------
// run_pool: workers + single committer
// ---------------------------------------------------------------------

/// Snapshot of pool health as an `alert-trace` registry snapshot, so
/// the existing timeseries/`tracequery rates` tooling applies as-is.
fn health_snapshot(q: &LeaseQueue, committed: usize, failed: usize) -> RegistrySnapshot {
    let (leases, expired, retries, duplicates) = q.counters();
    let mut counters = BTreeMap::new();
    counters.insert("pool.leases".to_owned(), leases);
    counters.insert("pool.lease_expired".to_owned(), expired);
    counters.insert("pool.retries".to_owned(), retries);
    counters.insert("pool.duplicates".to_owned(), duplicates);
    counters.insert("pool.committed".to_owned(), committed as u64);
    counters.insert("pool.failed".to_owned(), failed as u64);
    RegistrySnapshot {
        counters,
        histograms: BTreeMap::new(),
    }
}

/// Runs `units` across [`PoolOptions::jobs`] worker threads and commits
/// terminal outcomes **in canonical (slice) order** on the calling
/// thread.
///
/// * `exec(worker, unit)` runs on a worker thread, panic-isolated; an
///   `Err` (or panic) consumes one attempt and is retried with backoff
///   until [`PoolOptions::max_attempts`].
/// * `on_lease(unit, worker, attempt, deadline_s)` fires on every claim
///   (the journal hook); `deadline_s` is on the pool's monotonic clock
///   (seconds since pool start).
/// * `commit(unit, outcome)` runs on the calling thread only, strictly
///   in unit order, exactly once per unit that reached a terminal
///   outcome before cancellation.
pub fn run_pool<I, O, E, L, C>(
    units: &[WorkUnit<I>],
    opts: &PoolOptions,
    exec: E,
    on_lease: L,
    mut commit: C,
) -> PoolStats
where
    I: Sync,
    O: Send,
    E: Fn(usize, &WorkUnit<I>) -> Result<O, String> + Sync,
    L: Fn(&WorkUnit<I>, usize, u32, f64) + Sync,
    C: FnMut(&WorkUnit<I>, UnitOutcome<O>),
{
    let started = Instant::now();
    let jobs = opts.jobs.max(1);
    let queue = Mutex::new(LeaseQueue::new(units.len(), opts));
    let cond = Condvar::new();
    let (tx, rx) = mpsc::channel::<(usize, UnitOutcome<O>)>();

    let mut stats = PoolStats {
        completed: 0,
        failed: 0,
        leases: 0,
        lease_expired: 0,
        retries: 0,
        duplicates: 0,
        cancelled: false,
        timeseries: opts
            .sample_every
            .map(|d| MetricsTimeseries::new(d.as_secs_f64().max(1e-3))),
    };

    std::thread::scope(|scope| {
        for w in 0..jobs {
            let tx = tx.clone();
            let queue = &queue;
            let cond = &cond;
            let exec = &exec;
            let on_lease = &on_lease;
            scope.spawn(move || {
                worker_loop(w, units, opts, queue, cond, exec, on_lease, started, tx)
            });
        }
        drop(tx);

        // The calling thread is the single committer: buffer terminal
        // outcomes and commit the contiguous prefix in canonical order.
        let mut buffer: BTreeMap<usize, UnitOutcome<O>> = BTreeMap::new();
        let mut next = 0usize;
        let mut next_sample = opts.sample_every.map(|d| d.as_secs_f64().max(1e-3));
        let mut disconnected = false;
        while !disconnected {
            match rx.recv_timeout(Duration::from_millis(50)) {
                Ok((index, outcome)) => {
                    buffer.insert(index, outcome);
                }
                Err(mpsc::RecvTimeoutError::Timeout) => {}
                Err(mpsc::RecvTimeoutError::Disconnected) => disconnected = true,
            }
            while let Some(outcome) = buffer.remove(&next) {
                match &outcome {
                    UnitOutcome::Completed(_) => stats.completed += 1,
                    UnitOutcome::Failed { .. } => stats.failed += 1,
                }
                commit(&units[next], outcome);
                next += 1;
            }
            if let (Some(series), Some(at)) = (stats.timeseries.as_mut(), next_sample) {
                let elapsed = started.elapsed().as_secs_f64();
                if elapsed >= at {
                    let q = queue.lock().expect("pool queue poisoned");
                    series.record(elapsed, &health_snapshot(&q, stats.completed, stats.failed));
                    drop(q);
                    let every = opts.sample_every.expect("sampling on").as_secs_f64();
                    next_sample = Some(elapsed + every.max(1e-3));
                }
            }
        }
    });

    let q = queue.into_inner().expect("pool queue poisoned");
    (
        stats.leases,
        stats.lease_expired,
        stats.retries,
        stats.duplicates,
    ) = q.counters();
    stats.cancelled = stats.completed + stats.failed < units.len();
    if let Some(series) = stats.timeseries.as_mut() {
        // Always end with a final sample so even sub-cadence runs leave
        // a usable (header + ≥1 sample) series behind.
        let t = started.elapsed().as_secs_f64();
        let t = match series.samples.last() {
            Some(last) if t <= last.t => last.t + 1e-3,
            _ => t,
        };
        series.record(t, &health_snapshot(&q, stats.completed, stats.failed));
    }
    stats
}

/// One worker: claim, execute (panic-isolated), report. Exits when the
/// queue drains or the deadline cancels the run.
#[allow(clippy::too_many_arguments)]
fn worker_loop<I, O, E, L>(
    w: usize,
    units: &[WorkUnit<I>],
    opts: &PoolOptions,
    queue: &Mutex<LeaseQueue>,
    cond: &Condvar,
    exec: &E,
    on_lease: &L,
    started: Instant,
    tx: mpsc::Sender<(usize, UnitOutcome<O>)>,
) where
    I: Sync,
    O: Send,
    E: Fn(usize, &WorkUnit<I>) -> Result<O, String> + Sync,
    L: Fn(&WorkUnit<I>, usize, u32, f64) + Sync,
{
    loop {
        if opts.deadline.is_some_and(|d| Instant::now() >= d) {
            cond.notify_all();
            return;
        }
        let mut q = queue.lock().expect("pool queue poisoned");
        let now = started.elapsed().as_secs_f64();
        let max_attempts = q.max_attempts();
        for index in q.expire(now) {
            let _ = tx.send((
                index,
                UnitOutcome::Failed {
                    error: format!("lease expired after {max_attempts} attempts"),
                    attempts: max_attempts,
                },
            ));
        }
        match q.claim(w, now) {
            Claim::Unit { index, attempt } => {
                drop(q);
                let unit = &units[index];
                on_lease(unit, w, attempt, now + opts.lease.as_secs_f64());
                let result = match catch_unwind(AssertUnwindSafe(|| exec(w, unit))) {
                    Ok(r) => r,
                    Err(payload) => Err(format!("panicked: {}", panic_message(payload))),
                };
                let mut q = queue.lock().expect("pool queue poisoned");
                match result {
                    Ok(output) => {
                        if q.complete(index) == Completion::First {
                            let _ = tx.send((index, UnitOutcome::Completed(output)));
                        }
                    }
                    Err(error) => {
                        let now = started.elapsed().as_secs_f64();
                        match q.fail(index, now) {
                            FailDisposition::Retry { .. } => {
                                eprintln!(
                                    "[pool] worker {w}: {} attempt {attempt} failed \
                                     ({error}); re-queued with backoff",
                                    unit.label
                                );
                            }
                            FailDisposition::Exhausted => {
                                let _ = tx.send((
                                    index,
                                    UnitOutcome::Failed {
                                        error,
                                        attempts: attempt,
                                    },
                                ));
                            }
                            FailDisposition::Stale => {}
                        }
                    }
                }
                drop(q);
                cond.notify_all();
            }
            Claim::Drained => {
                cond.notify_all();
                return;
            }
            Claim::Wait { until } => {
                // Cap the sleep so deadlines and late expiries are
                // polled even without a notification.
                let sleep = Duration::from_secs_f64((until - now).clamp(0.001, 0.2));
                let _ = cond.wait_timeout(q, sleep).expect("pool queue poisoned");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};

    fn units(n: usize) -> Vec<WorkUnit<usize>> {
        (0..n)
            .map(|i| WorkUnit {
                label: format!("u{i}"),
                fingerprint: 0x1000 + i as u64,
                input: i,
            })
            .collect()
    }

    #[test]
    fn commits_in_canonical_order_across_workers() {
        let us = units(24);
        let opts = PoolOptions {
            jobs: 4,
            ..PoolOptions::default()
        };
        let mut seen = Vec::new();
        let stats = run_pool(
            &us,
            &opts,
            |_, u| {
                // Reverse-staggered sleeps so completion order is wildly
                // different from canonical order.
                std::thread::sleep(Duration::from_millis(((24 - u.input) % 7) as u64));
                Ok(u.input * 10)
            },
            |_, _, _, _| {},
            |u, out| match out {
                UnitOutcome::Completed(v) => {
                    assert_eq!(v, u.input * 10);
                    seen.push(u.input);
                }
                UnitOutcome::Failed { error, .. } => panic!("unexpected failure: {error}"),
            },
        );
        assert_eq!(seen, (0..24).collect::<Vec<_>>());
        assert_eq!(stats.completed, 24);
        assert_eq!(stats.failed, 0);
        assert!(!stats.cancelled);
        assert!(stats.leases >= 24);
    }

    #[test]
    fn failing_unit_retries_then_commits_failed() {
        let us = units(3);
        let attempts = AtomicU32::new(0);
        let opts = PoolOptions {
            jobs: 2,
            max_attempts: 3,
            backoff_base: Duration::from_millis(1),
            ..PoolOptions::default()
        };
        let mut outcomes = Vec::new();
        let stats = run_pool(
            &us,
            &opts,
            |_, u| {
                if u.input == 1 {
                    attempts.fetch_add(1, Ordering::Relaxed);
                    Err("planted failure".to_owned())
                } else {
                    Ok(())
                }
            },
            |_, _, _, _| {},
            |u, out| outcomes.push((u.input, matches!(out, UnitOutcome::Completed(_)))),
        );
        assert_eq!(attempts.load(Ordering::Relaxed), 3, "retried to the cap");
        assert_eq!(outcomes, vec![(0, true), (1, false), (2, true)]);
        assert_eq!(stats.retries, 2);
        assert_eq!(stats.failed, 1);
    }

    #[test]
    fn transient_failure_recovers_on_retry() {
        let us = units(1);
        let attempts = AtomicU32::new(0);
        let opts = PoolOptions {
            jobs: 1,
            backoff_base: Duration::from_millis(1),
            ..PoolOptions::default()
        };
        let mut ok = false;
        run_pool(
            &us,
            &opts,
            |_, _| {
                if attempts.fetch_add(1, Ordering::Relaxed) == 0 {
                    Err("transient".to_owned())
                } else {
                    Ok(())
                }
            },
            |_, _, _, _| {},
            |_, out| ok = matches!(out, UnitOutcome::Completed(())),
        );
        assert!(ok, "second attempt must succeed and commit as completed");
    }

    #[test]
    fn panicking_unit_is_isolated_and_retried() {
        let us = units(2);
        let opts = PoolOptions {
            jobs: 2,
            max_attempts: 2,
            backoff_base: Duration::from_millis(1),
            ..PoolOptions::default()
        };
        let mut failed_error = String::new();
        let stats = run_pool(
            &us,
            &opts,
            |_, u| {
                if u.input == 0 {
                    panic!("planted pool panic");
                }
                Ok(())
            },
            |_, _, _, _| {},
            |u, out| {
                if let UnitOutcome::Failed { error, attempts } = out {
                    assert_eq!(u.input, 0);
                    assert_eq!(attempts, 2);
                    failed_error = error;
                }
            },
        );
        assert!(
            failed_error.contains("planted pool panic"),
            "{failed_error}"
        );
        assert_eq!(stats.completed, 1);
        assert_eq!(stats.failed, 1);
    }

    #[test]
    fn expired_lease_is_reclaimed_and_deduped() {
        // Worker holding unit 0 sleeps past the lease; the other worker
        // reclaims and finishes it. Exactly one commit happens, and the
        // duplicate completion is counted.
        let us = units(1);
        let opts = PoolOptions {
            jobs: 2,
            lease: Duration::from_millis(30),
            backoff_base: Duration::from_millis(1),
            max_attempts: 5,
            ..PoolOptions::default()
        };
        let calls = AtomicU32::new(0);
        let mut commits = 0;
        let stats = run_pool(
            &us,
            &opts,
            |_, _| {
                if calls.fetch_add(1, Ordering::Relaxed) == 0 {
                    // First claimant outlives its lease.
                    std::thread::sleep(Duration::from_millis(120));
                }
                Ok(())
            },
            |_, _, _, _| {},
            |_, out| {
                assert!(matches!(out, UnitOutcome::Completed(())));
                commits += 1;
            },
        );
        assert_eq!(commits, 1, "exactly-once commit despite reclaim");
        assert!(stats.lease_expired >= 1, "{stats:?}");
        assert!(calls.load(Ordering::Relaxed) >= 2, "unit really ran twice");
        assert_eq!(stats.completed, 1);
        // One of the two completions was discarded as a duplicate.
        assert!(stats.duplicates >= 1, "{stats:?}");
    }

    #[test]
    fn deadline_cancels_without_committing_garbage() {
        let us = units(64);
        let opts = PoolOptions {
            jobs: 2,
            deadline: Some(Instant::now() + Duration::from_millis(40)),
            ..PoolOptions::default()
        };
        let mut committed = Vec::new();
        let stats = run_pool(
            &us,
            &opts,
            |_, u| {
                std::thread::sleep(Duration::from_millis(5));
                Ok(u.input)
            },
            |_, _, _, _| {},
            |u, out| {
                assert!(matches!(out, UnitOutcome::Completed(_)));
                committed.push(u.input);
            },
        );
        assert!(stats.cancelled, "{stats:?}");
        assert!(committed.len() < 64);
        // The committed set is a contiguous canonical prefix.
        assert_eq!(committed, (0..committed.len()).collect::<Vec<_>>());
    }

    #[test]
    fn lease_records_fire_per_claim() {
        let us = units(4);
        let opts = PoolOptions {
            jobs: 2,
            ..PoolOptions::default()
        };
        let leases = Mutex::new(Vec::new());
        run_pool(
            &us,
            &opts,
            |_, _| Ok(()),
            |u, worker, attempt, deadline| {
                assert!(attempt >= 1 && deadline > 0.0);
                assert!(worker < 2);
                leases.lock().unwrap().push(u.fingerprint);
            },
            |_, _| {},
        );
        let mut got = leases.into_inner().unwrap();
        got.sort_unstable();
        assert_eq!(got, us.iter().map(|u| u.fingerprint).collect::<Vec<_>>());
    }

    #[test]
    fn health_timeseries_has_final_sample() {
        let us = units(3);
        let opts = PoolOptions {
            jobs: 2,
            sample_every: Some(Duration::from_secs(1)),
            ..PoolOptions::default()
        };
        let stats = run_pool(&us, &opts, |_, _| Ok(()), |_, _, _, _| {}, |_, _| {});
        let series = stats.timeseries.expect("sampling requested");
        assert_eq!(series.every_s, 1.0);
        let last = series.samples.last().expect("final sample always taken");
        assert_eq!(last.counters.get("pool.committed"), Some(&3));
        assert_eq!(last.counters.get("pool.failed"), Some(&0));
        assert!(last.counters.contains_key("pool.lease_expired"));
        assert!(last.counters.contains_key("pool.retries"));
        // The series round-trips through the alert-timeseries/1 codec.
        let parsed = MetricsTimeseries::parse(&series.to_jsonl()).expect("codec round-trip");
        assert_eq!(parsed.samples.len(), series.samples.len());
    }

    #[test]
    fn empty_unit_list_is_a_no_op() {
        let us: Vec<WorkUnit<usize>> = Vec::new();
        let stats = run_pool(
            &us,
            &PoolOptions::default(),
            |_, _| Ok(()),
            |_, _, _, _| {},
            |_, _: UnitOutcome<()>| panic!("nothing to commit"),
        );
        assert_eq!(stats.completed, 0);
        assert!(!stats.cancelled);
    }
}

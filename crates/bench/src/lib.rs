//! # alert-bench
//!
//! The benchmark harness that regenerates every table and figure of the
//! ALERT paper's evaluation (Section 5) plus the analytical figures of
//! Section 4. See DESIGN.md § 4 for the per-experiment index.
//!
//! Use the `repro` binary:
//!
//! ```text
//! cargo run -p alert-bench --release --bin repro -- all --runs 30
//! cargo run -p alert-bench --release --bin repro -- fig14a
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod figures;
pub mod perf;
pub mod runner;
pub mod table;

pub use perf::{baseline_wall_min, perf_sweep, render_perf_json, PerfPoint};
pub use runner::{
    mean_curve, progress_enabled, run_instrumented, run_once, set_progress, sweep_metrics,
    sweep_point, try_run_once, ProtocolChoice, RunOptions, RunOutput, Stat,
};
pub use table::FigureTable;

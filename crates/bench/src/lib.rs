//! # alert-bench
//!
//! The benchmark harness that regenerates every table and figure of the
//! ALERT paper's evaluation (Section 5) plus the analytical figures of
//! Section 4. See DESIGN.md § 4 for the per-experiment index.
//!
//! Use the `repro` binary:
//!
//! ```text
//! cargo run -p alert-bench --release --bin repro -- all --runs 30
//! cargo run -p alert-bench --release --bin repro -- fig14a
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod figures;
pub mod orchestrate;
pub mod perf;
#[doc(hidden)]
pub mod planted;
pub mod pool;
pub mod runner;
pub mod table;

pub use orchestrate::{
    fingerprint, fingerprint_with, parse_flat_object, push_str_escaped, write_atomic, DirLock,
    EntryStatus, FailureEntry, FailureSink, Journal, LeaseEntry, LockError, ManifestEntry, Val,
    FAILURES_FILE, LOCK_FILE, MANIFEST_FILE,
};
pub use perf::{
    baseline_wall_min, perf_sweep, perf_sweep_scaled, render_perf_json, tracing_overhead,
    PerfPoint, TracingOverhead,
};
pub use pool::{
    run_pool, Claim, Completion, FailDisposition, LeaseQueue, PoolOptions, PoolStats, UnitOutcome,
    WorkUnit,
};
pub use runner::{
    drain_failures, drain_failures_scoped, failure_scope, failures_total, guarded_run_once,
    mean_curve, progress_enabled, run_instrumented, set_failure_scope, set_progress, sweep_metrics,
    sweep_point, try_run_once, FailureRecord, PostmortemDump, ProtocolChoice, RunFailure,
    RunOptions, RunOutcome, RunOutput, Stat, POSTMORTEM_RING_CAPACITY,
};
pub use table::FigureTable;

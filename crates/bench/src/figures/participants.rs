//! Simulated participation figures: Figs. 10a, 10b, 11.

use crate::runner::{mean_curve, sweep_metrics, sweep_point, ProtocolChoice, Stat};
use crate::table::FigureTable;
use alert_core::AlertConfig;
use alert_sim::ScenarioConfig;

fn scenario(nodes: usize) -> ScenarioConfig {
    ScenarioConfig::default().with_nodes(nodes)
}

/// Fig. 10a — cumulative actual participating nodes vs packets
/// transmitted, for ALERT and GPSR at 100 and 200 nodes. (ALARM and AO2P
/// follow GPSR's greedy scheme; the paper lets GPSR represent all three.)
pub fn fig10a(runs: usize) -> FigureTable {
    let mut t = FigureTable::new(
        "Fig. 10a — cumulative actual participating nodes per S-D pair (simulated)",
        "packets",
        vec![
            "ALERT N=100".into(),
            "ALERT N=200".into(),
            "GPSR N=100".into(),
            "GPSR N=200".into(),
        ],
    );
    let mut curves: Vec<Vec<f64>> = Vec::new();
    for (proto, nodes) in [
        (ProtocolChoice::Alert(AlertConfig::default()), 100),
        (ProtocolChoice::Alert(AlertConfig::default()), 200),
        (ProtocolChoice::Gpsr, 100),
        (ProtocolChoice::Gpsr, 200),
    ] {
        let metrics = sweep_metrics(proto, &scenario(nodes), runs);
        let per_run: Vec<Vec<f64>> = metrics
            .iter()
            .map(|m| m.mean_cumulative_participants())
            .collect();
        curves.push(mean_curve(&per_run));
    }
    let len = curves.iter().map(Vec::len).min().unwrap_or(0);
    for i in (0..len).step_by(4) {
        t.row(
            (i + 1).to_string(),
            curves.iter().map(|c| format!("{:.1}", c[i])).collect(),
        );
    }
    t.note("expected shape: ALERT grows to tens of nodes; GPSR stays near the shortest path (paper Fig. 10a)");
    t
}

/// Fig. 10b — actual participating nodes after 20 packets vs network
/// size.
pub fn fig10b(runs: usize) -> FigureTable {
    let mut t = FigureTable::new(
        "Fig. 10b — participating nodes after 20 packets vs network size (simulated)",
        "nodes",
        vec!["ALERT".into(), "GPSR".into()],
    );
    let at20 = |m: &alert_sim::Metrics| -> f64 {
        let c = m.mean_cumulative_participants();
        let idx = c.len().min(20);
        if idx == 0 {
            f64::NAN
        } else {
            c[idx - 1]
        }
    };
    for nodes in [50usize, 100, 150, 200] {
        let a = sweep_point(
            ProtocolChoice::Alert(AlertConfig::default()),
            &scenario(nodes),
            runs,
            at20,
        );
        let g = sweep_point(ProtocolChoice::Gpsr, &scenario(nodes), runs, at20);
        t.row(
            nodes.to_string(),
            vec![format!("{a:.1}"), format!("{g:.1}")],
        );
    }
    t.note("expected shape: ALERT 13-20 and growing with N; GPSR flat at 2-3 (paper Fig. 10b)");
    t
}

/// Fig. 11 — simulated number of random forwarders vs number of
/// partitions `H`.
pub fn fig11(runs: usize) -> FigureTable {
    let mut t = FigureTable::new(
        "Fig. 11 — random forwarders per packet vs partitions H (simulated)",
        "H",
        vec!["ALERT RFs".into(), "analytical E[RFs]".into()],
    );
    for h in 1..=7u32 {
        let cfg = AlertConfig::default().with_h(h);
        let s: Stat = sweep_point(
            ProtocolChoice::Alert(cfg),
            &scenario(200),
            runs,
            alert_sim::Metrics::mean_random_forwarders,
        );
        t.row(
            h.to_string(),
            vec![
                format!("{s:.2}"),
                format!("{:.2}", alert_analysis::expected_random_forwarders(h)),
            ],
        );
    }
    t.note("expected shape: approximately linear growth with H, consistent with Fig. 7b (paper Fig. 11)");
    t
}

//! One module per group of figures; every public function returns a
//! rendered-ready [`crate::table::FigureTable`].

pub mod analytic;
pub mod anonymity;
pub mod attacks;
pub mod claims;
pub mod faults;
pub mod participants;
pub mod performance;
pub mod zone;

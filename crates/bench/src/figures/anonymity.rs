//! Trace-derived anonymity telemetry: the anonymity-set size and entropy
//! of each flow *over time*, measured by replaying the Section 3.3
//! intersection attacker over stored traces (`alert_adversary::telemetry`).
//!
//! Unlike `attacks::fig5c`, which instruments the live simulator, this
//! figure consumes only the structured JSONL trace — the same pipeline as
//! `tracequery anonymity` — so it doubles as an end-to-end exercise of
//! the trace → telemetry path.

use crate::runner::{run_instrumented, ProtocolChoice, RunOptions};
use crate::table::FigureTable;
use alert_adversary::{anonymity_timeseries, FlowAnonymity};
use alert_core::AlertConfig;
use alert_sim::{parse_trace, JsonlSink, ScenarioConfig, SharedBuf};
use rayon::prelude::*;

/// Sampling window for the anonymity series (simulated seconds).
const EVERY_S: f64 = 5.0;

/// All flows derived from traced runs of `choice` across `runs` seeds.
fn traced_flows(choice: ProtocolChoice, runs: usize) -> Vec<FlowAnonymity> {
    let mut cfg = ScenarioConfig::default()
        .with_nodes(100)
        .with_duration(30.0);
    cfg.traffic.pairs = 2;
    (0..runs as u64)
        .into_par_iter()
        .flat_map(|s| {
            let seed = 0xF1_6C + s * 104729;
            let buf = SharedBuf::new();
            let opts = RunOptions::with_trace(Box::new(JsonlSink::new(buf.clone())));
            match run_instrumented(choice, &cfg, seed, opts) {
                Ok(_) => {
                    let events = parse_trace(&buf.contents()).expect("own trace parses");
                    anonymity_timeseries(&events, EVERY_S)
                }
                // Aborted/failed runs contribute no flows; the sweep
                // machinery already reported them.
                Err(_) => Vec::new(),
            }
        })
        .collect()
}

/// Mean recipient-set size and entropy of `flows` in window `w`
/// (flows whose run ended before the window contribute nothing).
fn window_mean(flows: &[FlowAnonymity], w: usize) -> Option<(f64, f64)> {
    let samples: Vec<_> = flows.iter().filter_map(|f| f.samples.get(w)).collect();
    if samples.is_empty() {
        return None;
    }
    let n = samples.len() as f64;
    let k = samples.iter().map(|s| s.recipients as f64).sum::<f64>() / n;
    let h = samples.iter().map(|s| s.entropy_bits).sum::<f64>() / n;
    Some((k, h))
}

/// Anonymity-set size and entropy vs simulated time, ALERT vs GPSR —
/// the anonymity telemetry figure (trace-derived, Section 3.3 attacker).
pub fn anonymity_vs_time(runs: usize) -> FigureTable {
    let mut t = FigureTable::new(
        "Anonymity vs time — trace-derived intersection attacker (Section 3.3)",
        "window (s)",
        vec![
            "ALERT k".into(),
            "ALERT H (bits)".into(),
            "GPSR k".into(),
            "GPSR H (bits)".into(),
        ],
    );
    let alert = traced_flows(ProtocolChoice::Alert(AlertConfig::default()), runs);
    let gpsr = traced_flows(ProtocolChoice::Gpsr, runs);
    let windows = alert
        .iter()
        .chain(&gpsr)
        .map(|f| f.samples.len())
        .max()
        .unwrap_or(0);
    let cell = |v: Option<f64>| v.map_or("-".to_owned(), |x| format!("{x:.2}"));
    for w in 0..windows {
        let a = window_mean(&alert, w);
        let g = window_mean(&gpsr, w);
        t.row(
            format!("{:.0}-{:.0}", w as f64 * EVERY_S, (w + 1) as f64 * EVERY_S),
            vec![
                cell(a.map(|x| x.0)),
                cell(a.map(|x| x.1)),
                cell(g.map(|x| x.0)),
                cell(g.map(|x| x.1)),
            ],
        );
    }
    let excluded = |flows: &[FlowAnonymity]| {
        if flows.is_empty() {
            return 0.0;
        }
        flows.iter().filter(|f| f.destination_excluded).count() as f64 / flows.len() as f64 * 100.0
    };
    let identified = |flows: &[FlowAnonymity]| {
        if flows.is_empty() {
            return 0.0;
        }
        flows.iter().filter(|f| f.identified).count() as f64 / flows.len() as f64 * 100.0
    };
    t.note(format!(
        "flow outcomes: ALERT D-identified {:.0}% / D-excluded {:.0}%, GPSR D-identified {:.0}% / D-excluded {:.0}%",
        identified(&alert),
        excluded(&alert),
        identified(&gpsr),
        excluded(&gpsr),
    ));
    t.note("expected shape: ALERT's randomized relays keep per-window k high and churning;");
    t.note("GPSR repeats one shortest path, so the intersection collapses towards the destination");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn anonymity_figure_renders_and_is_deterministic() {
        let a = anonymity_vs_time(1);
        assert_eq!(a.series.len(), 4);
        assert!(!a.rows.is_empty(), "30 s run yields windows");
        let b = anonymity_vs_time(1);
        assert_eq!(a.rows, b.rows, "trace-derived telemetry is deterministic");
    }
}

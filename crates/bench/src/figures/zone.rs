//! Destination-zone residence figures (simulated): Figs. 12, 13a, 13b.
//!
//! These experiments are pure mobility: populate the field, fix the
//! destination zone of a random destination, and count how many of the
//! original zone members remain inside over time — the simulated
//! counterpart of Eqs. (11)–(15).

use crate::runner::Stat;
use crate::table::FigureTable;
use alert_geom::{destination_zone, Axis, Rect};
use alert_mobility::{Mobility, RandomWaypoint, RandomWaypointConfig, StaticField};
use rayon::prelude::*;

const L: f64 = 1000.0;

/// Counts the original destination-zone members still in the zone at each
/// sample time, for one seeded mobility run.
fn remaining_series_once(nodes: usize, h: u32, speed: f64, times: &[f64], seed: u64) -> Vec<f64> {
    let field = Rect::with_size(L, L);
    let mut mobility: Box<dyn Mobility> = if speed > 0.0 {
        Box::new(RandomWaypoint::new(
            field,
            RandomWaypointConfig::fixed_speed(nodes, speed),
            seed,
        ))
    } else {
        Box::new(StaticField::uniform(field, nodes, seed))
    };
    // Destination = node 0's starting position; Z_D derives from it.
    let dest = mobility.position(0);
    let zd = destination_zone(&field, dest, h, Axis::Vertical);
    let members: Vec<usize> = (0..nodes)
        .filter(|&i| zd.contains(mobility.position(i)))
        .collect();
    let mut out = Vec::with_capacity(times.len());
    let mut now = 0.0;
    for &t in times {
        while now < t {
            mobility.step(0.5);
            now += 0.5;
        }
        let remaining = members
            .iter()
            .filter(|&&i| zd.contains(mobility.position(i)))
            .count();
        out.push(remaining as f64);
    }
    out
}

/// Mean remaining-node series across seeds.
fn remaining_series(nodes: usize, h: u32, speed: f64, times: &[f64], runs: usize) -> Vec<Stat> {
    let all: Vec<Vec<f64>> = (0..runs as u64)
        .into_par_iter()
        .map(|seed| remaining_series_once(nodes, h, speed, times, 0xD0_0D + seed * 6007))
        .collect();
    (0..times.len())
        .map(|i| Stat::from_samples(&all.iter().map(|r| r[i]).collect::<Vec<_>>()))
        .collect()
}

/// Fig. 12 — remaining nodes vs time for densities 100/150/200 per km^2,
/// H = 5, v = 2 m/s.
pub fn fig12(runs: usize) -> FigureTable {
    let times: Vec<f64> = (0..=40).step_by(5).map(f64::from).collect();
    let mut t = FigureTable::new(
        "Fig. 12 — remaining nodes in the destination zone vs time, H=5, v=2 m/s (simulated)",
        "t (s)",
        vec!["rho=100".into(), "rho=150".into(), "rho=200".into()],
    );
    let series: Vec<Vec<Stat>> = [100usize, 150, 200]
        .iter()
        .map(|&n| remaining_series(n, 5, 2.0, &times, runs))
        .collect();
    for (i, ti) in times.iter().enumerate() {
        t.row(
            format!("{ti:.0}"),
            series.iter().map(|s| format!("{:.2}", s[i])).collect(),
        );
    }
    t.note("expected shape: decays with time, scales with density — matches the analytical Fig. 9a (paper Fig. 12)");
    t
}

/// Fig. 13a — remaining nodes vs time for H in {4, 5} and speeds
/// {0, 2, 4} m/s at 200 nodes.
pub fn fig13a(runs: usize) -> FigureTable {
    let times: Vec<f64> = (0..=40).step_by(10).map(f64::from).collect();
    let mut t = FigureTable::new(
        "Fig. 13a — remaining nodes vs time for H in {4,5}, v in {0,2,4} (simulated)",
        "t (s)",
        vec![
            "H=4 v=0".into(),
            "H=4 v=2".into(),
            "H=4 v=4".into(),
            "H=5 v=0".into(),
            "H=5 v=2".into(),
            "H=5 v=4".into(),
        ],
    );
    let mut series: Vec<Vec<Stat>> = Vec::new();
    for h in [4u32, 5] {
        for v in [0.0f64, 2.0, 4.0] {
            series.push(remaining_series(200, h, v, &times, runs));
        }
    }
    for (i, ti) in times.iter().enumerate() {
        t.row(
            format!("{ti:.0}"),
            series.iter().map(|s| format!("{:.1}", s[i].mean)).collect(),
        );
    }
    t.note("expected shape: higher speed loses nodes faster; H=4 zones hold more than H=5 (paper Fig. 13a)");
    t
}

/// Fig. 13b — node density required to keep a target number of original
/// members in the zone after 10 s, vs node speed (H = 5).
pub fn fig13b(runs: usize) -> FigureTable {
    let target = 5.0; // nodes remaining after 10 s
    let mut t = FigureTable::new(
        "Fig. 13b — required density (nodes/km^2) for 5 remaining nodes at t=10 s, H=5 (simulated)",
        "v (m/s)",
        vec!["simulated".into(), "analytical (Eq. 15 inverse)".into()],
    );
    let times = [10.0];
    for v in [2.0f64, 4.0, 6.0, 8.0] {
        // Sweep densities and interpolate the crossing of `target`.
        let grid: Vec<usize> = (2..=12).map(|k| k * 50).collect();
        let mut remaining: Vec<(f64, f64)> = Vec::new();
        for &n in &grid {
            let s = remaining_series(n, 5, v, &times, runs);
            remaining.push((n as f64, s[0].mean));
        }
        let sim = interpolate_crossing(&remaining, target);
        let ana = alert_analysis::required_density(5, L, L, v, 10.0, target) * 1_000_000.0;
        t.row(
            format!("{v:.0}"),
            vec![
                sim.map_or("> grid".into(), |d| format!("{d:.0}")),
                format!("{ana:.0}"),
            ],
        );
    }
    t.note("expected shape: faster movement requires higher density (paper Fig. 13b)");
    t
}

/// Linear interpolation of the first x where the (increasing-in-x) series
/// crosses `target`.
fn interpolate_crossing(points: &[(f64, f64)], target: f64) -> Option<f64> {
    for w in points.windows(2) {
        let ((x0, y0), (x1, y1)) = (w[0], w[1]);
        if (y0 <= target && y1 >= target) || (y0 >= target && y1 <= target) {
            if (y1 - y0).abs() < 1e-12 {
                return Some(x0);
            }
            return Some(x0 + (target - y0) / (y1 - y0) * (x1 - x0));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn remaining_starts_at_zone_population_and_decays() {
        let times = [0.0, 10.0, 20.0];
        let s = remaining_series(200, 5, 2.0, &times, 8);
        // Zone is 1/32 of the field: ~6.25 nodes initially on average.
        assert!(
            (s[0].mean - 6.25).abs() < 3.0,
            "initial population {} far from 6.25",
            s[0].mean
        );
        assert!(s[0].mean >= s[1].mean && s[1].mean >= s[2].mean);
    }

    #[test]
    fn static_nodes_never_decay() {
        let times = [0.0, 20.0];
        let s = remaining_series(200, 5, 0.0, &times, 4);
        assert_eq!(s[0].mean, s[1].mean);
    }

    #[test]
    fn interpolation_finds_crossing() {
        let pts = [(100.0, 2.0), (200.0, 4.0), (300.0, 6.0)];
        let x = interpolate_crossing(&pts, 5.0).expect("target 5.0 lies between samples");
        assert!((x - 250.0).abs() < 1e-9);
        assert!(interpolate_crossing(&pts, 10.0).is_none());
    }
}

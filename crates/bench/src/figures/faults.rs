//! Failure-recovery outputs: graceful degradation under node churn.
//!
//! Not a figure from the paper — the paper's NS-2 setup holds all 200
//! nodes up for the whole run. This sweep drives the fault-injection
//! subsystem ([`alert_sim::FaultPlan`]) across increasing crash rates and
//! reports how each of the four headline protocols degrades, with and
//! without a simultaneous blackhole compromise (the Section 3.1 active
//! attack riding on top of the churn).

use crate::runner::{panic_message, quarantine, FailureRecord, Stat};
use crate::table::FigureTable;
use alert_adversary::{choose_compromised, Blackhole};
use alert_core::{Alert, AlertConfig};
use alert_protocols::{Alarm, Ao2p, Gpsr};
use alert_sim::{FaultPlan, Metrics, NodeId, ProtocolNode, ScenarioConfig, World};
use rayon::prelude::*;
use std::collections::BTreeSet;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Crash fractions swept (0 = the calibrated fault-free baseline).
pub const CRASH_FRACTIONS: [f64; 4] = [0.0, 0.1, 0.2, 0.3];

/// Blackhole relays in the "compromised" variant of the sweep.
const BLACKHOLES: usize = 15;

/// Seed of the churn schedule itself. Fixed across runs and crash
/// fractions so a higher fraction crashes a strict superset of a lower
/// fraction's victims (see [`FaultPlan::churn`]); the per-run seed still
/// varies mobility, traffic, and the channel.
const CHURN_SEED: u64 = 0xFA17;

/// The sweep scenario: the paper's default field with a churn fault plan.
fn churn_scenario(crash_fraction: f64) -> ScenarioConfig {
    let mut cfg = ScenarioConfig::default().with_duration(60.0);
    cfg.traffic.pairs = 4;
    cfg.faults = FaultPlan::churn(cfg.nodes, crash_fraction, cfg.duration_s, CHURN_SEED);
    cfg
}

/// One churn run: `blackholes` compromised relays (0 = clean) on top of
/// the crash schedule. Endpoints are never compromised, mirroring the
/// DoS-resilience experiments.
fn run_churn<P, F>(crash_fraction: f64, blackholes: usize, seed: u64, factory: F) -> Metrics
where
    P: ProtocolNode,
    F: Fn() -> P + Copy,
{
    let cfg = churn_scenario(crash_fraction);
    let comp: BTreeSet<NodeId> = if blackholes == 0 {
        BTreeSet::new()
    } else {
        // Dry build to learn the seed's session endpoints.
        let probe = World::new(cfg.clone(), seed, move |_, _| factory());
        let endpoints: BTreeSet<NodeId> = probe
            .sessions()
            .iter()
            .flat_map(|s| [s.src, s.dst])
            .collect();
        drop(probe);
        choose_compromised(cfg.nodes, blackholes, &endpoints, seed ^ 0xBAD)
    };
    let mut w = World::new(cfg, seed, move |id, _| {
        Blackhole::new(factory(), comp.contains(&id))
    });
    w.run();
    w.metrics().clone()
}

/// The four headline protocols of the performance figures.
const PROTOCOLS: [&str; 4] = ["ALERT", "GPSR", "ALARM", "AO2P"];

fn run_protocol(name: &str, crash_fraction: f64, blackholes: usize, seed: u64) -> Metrics {
    match name {
        "ALERT" => run_churn(crash_fraction, blackholes, seed, || {
            Alert::new(AlertConfig::default())
        }),
        "GPSR" => run_churn(crash_fraction, blackholes, seed, Gpsr::default),
        "ALARM" => run_churn(crash_fraction, blackholes, seed, Alarm::default),
        "AO2P" => run_churn(crash_fraction, blackholes, seed, Ao2p::default),
        other => panic!("unknown protocol {other}"),
    }
}

/// `(delivery, latency ms)` for one sweep cell, averaged over `runs`
/// seeds in parallel. A run that panics (a protocol bug tripped by the
/// churn schedule) is quarantined into the shared failure ledger and
/// dropped from the averages instead of sinking the whole figure.
fn sweep_cell(name: &str, crash_fraction: f64, blackholes: usize, runs: usize) -> (Stat, Stat) {
    let metrics: Vec<Metrics> = (0..runs as u64)
        .into_par_iter()
        .filter_map(|s| {
            let seed = 0xA1E7 + s * 7919;
            catch_unwind(AssertUnwindSafe(|| {
                run_protocol(name, crash_fraction, blackholes, seed)
            }))
            .map_err(|payload| {
                quarantine(FailureRecord {
                    protocol: name.to_owned(),
                    nodes: churn_scenario(crash_fraction).nodes,
                    seed,
                    error: format!(
                        "panicked: {} (churn sweep, crash_fraction={crash_fraction}, \
                         blackholes={blackholes})",
                        panic_message(payload)
                    ),
                    replay: format!("repro churn --runs {runs}"),
                });
            })
            .ok()
        })
        .collect();
    let delivery: Vec<f64> = metrics.iter().map(Metrics::delivery_rate).collect();
    let latency: Vec<f64> = metrics
        .iter()
        .map(|m| m.mean_latency().unwrap_or(f64::NAN) * 1000.0)
        .collect();
    (Stat::from_samples(&delivery), Stat::from_samples(&latency))
}

/// Churn sweep — delivery rate and latency vs crash rate for the four
/// protocols, clean and under a simultaneous blackhole compromise.
pub fn churn_sweep(runs: usize) -> FigureTable {
    let mut t = FigureTable::new(
        "Churn sweep — graceful degradation under node crash/recovery (fault model, DESIGN.md)",
        "protocol @ crash rate",
        vec![
            "delivery".into(),
            "latency ms".into(),
            format!("delivery ({BLACKHOLES} blackholes)"),
            format!("latency ms ({BLACKHOLES} blackholes)"),
        ],
    );
    for name in PROTOCOLS {
        for f in CRASH_FRACTIONS {
            let (d, l) = sweep_cell(name, f, 0, runs);
            let (db, lb) = sweep_cell(name, f, BLACKHOLES, runs);
            t.row(
                format!("{name} @ {:.0}%", f * 100.0),
                vec![
                    format!("{d:.3}"),
                    format!("{:.1} ±{:.1}", l.mean, l.ci95),
                    format!("{db:.3}"),
                    format!("{:.1} ±{:.1}", lb.mean, lb.ci95),
                ],
            );
        }
    }
    t.note("expected shape: delivery decays gracefully (not cliff-like) with crash rate for all");
    t.note("protocols; blackholes cost extra delivery on top of churn; crash schedules nest, so");
    t.note("each rate's victims are a superset of the previous rate's (FaultPlan::churn)");
    t
}

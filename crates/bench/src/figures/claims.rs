//! Claim-level experiments that have no dedicated paper figure: the
//! Section 3.1 denial-of-service / interception resistance claims.

use crate::table::FigureTable;
use alert_adversary::{choose_compromised, interception_fraction, Blackhole};
use alert_core::{Alert, AlertConfig};
use alert_protocols::Gpsr;
use alert_sim::{Metrics, MobilityKind, NodeId, ProtocolNode, ScenarioConfig, SessionId, World};
use rayon::prelude::*;
use std::collections::BTreeSet;

const PAIRS: usize = 4;

fn scenario() -> ScenarioConfig {
    // Static topology: the claim is about route stability under attack.
    let mut cfg = ScenarioConfig::default()
        .with_nodes(200)
        .with_duration(60.0)
        .with_mobility(MobilityKind::Static);
    cfg.traffic.pairs = PAIRS;
    cfg
}

fn session_rates(m: &Metrics) -> Vec<f64> {
    (0..PAIRS as u32)
        .map(|s| {
            let pk: Vec<_> = m
                .packets
                .iter()
                .filter(|p| p.session == SessionId(s))
                .collect();
            pk.iter().filter(|p| p.delivered_at.is_some()).count() as f64 / pk.len().max(1) as f64
        })
        .collect()
}

fn run_with_blackholes<P: ProtocolNode, F: Fn() -> P + Copy>(
    count: usize,
    seed: u64,
    factory: F,
) -> Metrics {
    let probe = World::new(scenario(), seed, move |_, _| factory());
    let endpoints: BTreeSet<NodeId> = probe
        .sessions()
        .iter()
        .flat_map(|s| [s.src, s.dst])
        .collect();
    drop(probe);
    let compromised = choose_compromised(200, count, &endpoints, seed ^ 0xBAD);
    let mut w = World::new(scenario(), seed, move |id, _| {
        Blackhole::new(factory(), compromised.contains(&id))
    });
    w.run();
    w.metrics().clone()
}

/// §3.1 DoS claim — delivery and completely-cut sessions vs the number of
/// compromised relay nodes, ALERT against GPSR.
pub fn claim_dos(runs: usize) -> FigureTable {
    let mut t = FigureTable::new(
        "§3.1 claim — resilience to compromised (blackhole) relays, static topology",
        "compromised",
        vec![
            "ALERT delivery".into(),
            "GPSR delivery".into(),
            "ALERT dead pairs %".into(),
            "GPSR dead pairs %".into(),
        ],
    );
    for count in [0usize, 10, 20, 30, 40] {
        let outcomes: Vec<(f64, f64, usize, usize)> = (0..runs as u64)
            .into_par_iter()
            .map(|seed| {
                let am = run_with_blackholes(count, seed, || Alert::new(AlertConfig::default()));
                let gm = run_with_blackholes(count, seed, Gpsr::default);
                let a_dead = session_rates(&am).iter().filter(|&&r| r < 0.05).count();
                let g_dead = session_rates(&gm).iter().filter(|&&r| r < 0.05).count();
                (am.delivery_rate(), gm.delivery_rate(), a_dead, g_dead)
            })
            .collect();
        let n = outcomes.len() as f64;
        let a_del = outcomes.iter().map(|o| o.0).sum::<f64>() / n;
        let g_del = outcomes.iter().map(|o| o.1).sum::<f64>() / n;
        let a_dead = outcomes.iter().map(|o| o.2).sum::<usize>() as f64 / (n * PAIRS as f64);
        let g_dead = outcomes.iter().map(|o| o.3).sum::<usize>() as f64 / (n * PAIRS as f64);
        t.row(
            format!("{count} ({:.0}%)", count as f64 / 2.0),
            vec![
                format!("{a_del:.3}"),
                format!("{g_del:.3}"),
                format!("{:.0}", a_dead * 100.0),
                format!("{:.0}", g_dead * 100.0),
            ],
        );
    }
    t.note("claim: 'communication in ALERT cannot be completely stopped by compromising certain");
    t.note(
        "nodes' while 'these attacks are easy to perform in geographic routing' — GPSR pairs die",
    );
    t.note("outright when a blackhole sits on their fixed path; ALERT pairs degrade but survive.");
    t
}

/// §3.1 interception claim — how much of a session the single best-placed
/// stationary relay carries under each protocol.
pub fn claim_interception(runs: usize) -> FigureTable {
    let mut t = FigureTable::new(
        "§3.1 claim — best-relay interception fraction per session, static topology",
        "protocol",
        vec!["best-relay sees".into()],
    );
    let best = |m: &Metrics| -> f64 {
        let mut acc = 0.0;
        for s in 0..PAIRS as u32 {
            let endpoints: BTreeSet<NodeId> = m
                .packets
                .iter()
                .filter(|p| p.session == SessionId(s))
                .flat_map(|p| [p.src, p.dst])
                .collect();
            let relays: BTreeSet<NodeId> = m
                .packets
                .iter()
                .filter(|p| p.session == SessionId(s))
                .flat_map(|p| p.participants.iter().copied())
                .filter(|n| !endpoints.contains(n))
                .collect();
            acc += relays
                .iter()
                .map(|&r| interception_fraction(m, SessionId(s), &[r].into_iter().collect()))
                .fold(0.0, f64::max)
                / PAIRS as f64;
        }
        acc
    };
    let alert: f64 = (0..runs as u64)
        .into_par_iter()
        .map(|seed| {
            let mut w = World::new(scenario(), seed, |_, _| Alert::new(AlertConfig::default()));
            w.run();
            best(w.metrics())
        })
        .sum::<f64>()
        / runs as f64;
    let gpsr: f64 = (0..runs as u64)
        .into_par_iter()
        .map(|seed| {
            let mut w = World::new(scenario(), seed, |_, _| Gpsr::default());
            w.run();
            best(w.metrics())
        })
        .sum::<f64>()
        / runs as f64;
    t.row("ALERT", vec![format!("{:.0}% of packets", alert * 100.0)]);
    t.row("GPSR", vec![format!("{:.0}% of packets", gpsr * 100.0)]);
    t.note("claim: route randomization denies any fixed relay a full view of a session, defeating");
    t.note("packet interception at a chosen point (Section 3.1).");
    t
}

/// §3.3 — the cost of each intersection-attack countermeasure: ALERT's
/// two-step delivery pays latency (held until the next packet); ZAP's
/// zone enlargement pays bandwidth (ever-growing floods). Both defend the
/// destination; the paper argues ALERT's trade is the cheaper one for
/// long sessions.
pub fn claim_defense_cost(runs: usize) -> FigureTable {
    use crate::runner::{sweep_point, ProtocolChoice};
    let mut t = FigureTable::new(
        "§3.3 claim — cost of intersection countermeasures (60 s sessions)",
        "scheme",
        vec![
            "delivery".into(),
            "latency (ms)".into(),
            "hops/packet".into(),
        ],
    );
    let mut cfg = ScenarioConfig::default().with_duration(60.0);
    cfg.traffic.pairs = 4;
    let schemes = [
        (
            "ALERT (no defense)",
            ProtocolChoice::Alert(AlertConfig::default()),
        ),
        (
            "ALERT two-step m=3",
            ProtocolChoice::Alert(AlertConfig::default().with_intersection_defense(3)),
        ),
        ("ZAP (fixed zone)", ProtocolChoice::Zap { growth: 1.0 }),
        (
            "ZAP growing zone +5%/pkt",
            ProtocolChoice::Zap { growth: 1.05 },
        ),
    ];
    for (name, proto) in schemes {
        let d = sweep_point(proto, &cfg, runs, Metrics::delivery_rate);
        let l = sweep_point(proto, &cfg, runs, |m: &Metrics| {
            m.mean_latency().map_or(f64::NAN, |v| v * 1000.0)
        });
        let h = sweep_point(proto, &cfg, runs, Metrics::hops_per_packet);
        t.row(
            name,
            vec![
                format!("{:.3}", d.mean),
                format!("{:.0}", l.mean),
                format!("{:.1}", h.mean),
            ],
        );
    }
    t.note("ALERT's defense costs latency (delivery waits for the next packet ~2 s); ZAP's zone");
    t.note("enlargement costs bandwidth (flood hops grow every packet) — the Section 3.3 argument");
    t.note("for preferring the two-step delivery in long-duration sessions.");
    t
}

/// §5 summary claim — energy per delivered packet: "\[ALERT\] has
/// significantly lower energy consumption compared to AO2P and ALARM, and
/// provides comparable routing efficiency with ... GPSR". Radio energy
/// (tx + rx airtime) plus crypto CPU energy under the paper's cost model.
pub fn claim_energy(runs: usize) -> FigureTable {
    use crate::runner::{sweep_point, ProtocolChoice};
    use alert_crypto::CostModel;
    let mut t = FigureTable::new(
        "§5 claim — energy per delivered packet (radio + crypto CPU), joules",
        "protocol",
        vec![
            "total J/pkt".into(),
            "radio J/pkt".into(),
            "crypto J/pkt".into(),
        ],
    );
    let cfg = ScenarioConfig::default();
    let cpu_watts = cfg.energy.cpu_watts;
    let rows: [(&str, ProtocolChoice); 7] = [
        ("ALERT", ProtocolChoice::Alert(AlertConfig::default())),
        (
            "ALERT (no notify&go)",
            ProtocolChoice::Alert(AlertConfig::default().with_notify_and_go(false)),
        ),
        ("GPSR", ProtocolChoice::Gpsr),
        ("ALARM", ProtocolChoice::Alarm),
        ("AO2P", ProtocolChoice::Ao2p),
        ("ZAP", ProtocolChoice::Zap { growth: 1.0 }),
        ("ANODR", ProtocolChoice::Anodr),
    ];
    for (name, proto) in rows {
        let total = sweep_point(proto, &cfg, runs, |m: &Metrics| {
            m.energy_per_delivered_packet_j(&CostModel::PAPER_1_8GHZ, cpu_watts)
        });
        let radio = sweep_point(proto, &cfg, runs, |m: &Metrics| {
            let delivered = m
                .packets
                .iter()
                .filter(|p| p.delivered_at.is_some())
                .count();
            if delivered == 0 {
                f64::NAN
            } else {
                (m.energy_tx_j + m.energy_rx_j) / delivered as f64
            }
        });
        let crypto = sweep_point(proto, &cfg, runs, |m: &Metrics| {
            let delivered = m
                .packets
                .iter()
                .filter(|p| p.delivered_at.is_some())
                .count();
            if delivered == 0 {
                f64::NAN
            } else {
                m.cpu_energy_j(&CostModel::PAPER_1_8GHZ, cpu_watts) / delivered as f64
            }
        });
        t.row(
            name,
            vec![
                format!("{:.3}", total.mean),
                format!("{:.3}", radio.mean),
                format!("{:.3}", crypto.mean),
            ],
        );
    }
    t.note("claim: ALERT's routed data path costs far less energy than the per-hop public-key");
    t.note("protocols (their crypto CPU term dominates). REPRODUCTION FINDING: with notify-and-go");
    t.note("enabled, the eta cover broadcasts per packet dominate ALERT's radio budget and exceed");
    t.note("ALARM/AO2P's crypto energy — the paper's energy claim holds for the routing mechanism");
    t.note("(see the no-notify&go row) but not once source-anonymity cover traffic is charged.");
    t
}

/// Panorama — every implemented protocol on the paper's default scenario,
/// across the dimensions the paper argues about. The one-table summary of
/// the whole reproduction.
pub fn panorama(runs: usize) -> FigureTable {
    use crate::runner::{sweep_point, ProtocolChoice};
    use alert_crypto::CostModel;
    let mut t = FigureTable::new(
        "Panorama — all protocols on the paper's default scenario",
        "protocol",
        vec![
            "delivery".into(),
            "latency ms".into(),
            "hops/pkt".into(),
            "hops+ctl".into(),
            "route div.".into(),
            "energy J/pkt".into(),
        ],
    );
    let cfg = ScenarioConfig::default();
    let cpu_watts = cfg.energy.cpu_watts;
    let protos = [
        ProtocolChoice::Alert(AlertConfig::default()),
        ProtocolChoice::Gpsr,
        ProtocolChoice::Alarm,
        ProtocolChoice::Ao2p,
        ProtocolChoice::Zap { growth: 1.0 },
        ProtocolChoice::Anodr,
        ProtocolChoice::Prism,
        ProtocolChoice::Mask,
        ProtocolChoice::Mapcp,
    ];
    for proto in protos {
        let d = sweep_point(proto, &cfg, runs, Metrics::delivery_rate);
        let l = sweep_point(proto, &cfg, runs, |m: &Metrics| {
            m.mean_latency().map_or(f64::NAN, |v| v * 1000.0)
        });
        let h = sweep_point(proto, &cfg, runs, Metrics::hops_per_packet);
        let hc = sweep_point(proto, &cfg, runs, Metrics::hops_per_packet_with_control);
        let div = sweep_point(proto, &cfg, runs, |m: &Metrics| {
            let mut acc = 0.0;
            let sessions: std::collections::BTreeSet<SessionId> =
                m.packets.iter().map(|p| p.session).collect();
            for s in &sessions {
                let routes: Vec<Vec<NodeId>> = m
                    .packets
                    .iter()
                    .filter(|p| p.session == *s && p.delivered_at.is_some())
                    .map(|p| p.participants.clone())
                    .collect();
                acc += alert_adversary::mean_route_diversity(&routes) / sessions.len() as f64;
            }
            acc
        });
        let e = sweep_point(proto, &cfg, runs, |m: &Metrics| {
            m.energy_per_delivered_packet_j(&CostModel::PAPER_1_8GHZ, cpu_watts)
        });
        t.row(
            proto.name(),
            vec![
                format!("{:.3}", d.mean),
                format!("{:.0}", l.mean),
                format!("{:.1}", h.mean),
                format!("{:.1}", hc.mean),
                format!("{:.2}", div.mean),
                format!("{:.2}", e.mean),
            ],
        );
    }
    t.note("route div. = mean Jaccard distance between consecutive delivered routes per pair —");
    t.note("the measurable face of route anonymity. ALERT is the only protocol combining high");
    t.note("diversity with symmetric-only data-path crypto (Table 1's claim, quantified).");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dos_table_renders() {
        // Smoke with 1 run: shape checks live in alert-adversary's tests.
        let t = claim_dos(1);
        assert_eq!(t.rows.len(), 5);
        assert!(t.render().contains("GPSR dead pairs"));
    }
}

//! The analytical figures (Section 4): Figs. 7a, 7b, 9a, 9b.

use crate::table::FigureTable;
use alert_analysis::{expected_participants, expected_random_forwarders, remaining_nodes};

const L: f64 = 1000.0;

/// Fig. 7a — estimated possible participating nodes vs number of
/// partitions, for 100/200/400-node networks (Eq. 7).
pub fn fig7a() -> FigureTable {
    let mut t = FigureTable::new(
        "Fig. 7a — estimated possible participating nodes (analytical, Eq. 7)",
        "H",
        vec!["N=100".into(), "N=200".into(), "N=400".into()],
    );
    for h in 1..=8u32 {
        let vals: Vec<String> = [100.0, 200.0, 400.0]
            .iter()
            .map(|n| format!("{:.2}", expected_participants(h, L, L, n / (L * L))))
            .collect();
        t.row(h.to_string(), vals);
    }
    t.note("expected shape: fast rise H=1→2, then saturation near N/4 (paper Fig. 7a)");
    t
}

/// Fig. 7b — estimated number of random forwarders vs partitions (Eq. 10).
pub fn fig7b() -> FigureTable {
    let mut t = FigureTable::new(
        "Fig. 7b — estimated random forwarders (analytical, Eq. 10)",
        "H",
        vec!["E[RFs]".into()],
    );
    for h in 1..=10u32 {
        t.row(
            h.to_string(),
            vec![format!("{:.3}", expected_random_forwarders(h))],
        );
    }
    t.note("expected shape: linear growth, asymptotic slope 1/2 per partition (paper Fig. 7b)");
    t
}

/// Fig. 9a — analytical remaining nodes in the destination zone over
/// time, densities 100/200/400 per km^2, v = 2 m/s, H = 5 (Eq. 15).
pub fn fig9a() -> FigureTable {
    let mut t = FigureTable::new(
        "Fig. 9a — estimated remaining nodes vs time, v=2 m/s, H=5 (analytical, Eq. 15)",
        "t (s)",
        vec!["rho=100".into(), "rho=200".into(), "rho=400".into()],
    );
    for ti in (0..=40).step_by(5) {
        let vals: Vec<String> = [100.0, 200.0, 400.0]
            .iter()
            .map(|n| {
                format!(
                    "{:.2}",
                    remaining_nodes(5, L, L, n / (L * L), 2.0, ti as f64)
                )
            })
            .collect();
        t.row(ti.to_string(), vals);
    }
    t.note("expected shape: exponential decay; denser networks retain proportionally more (paper Fig. 9a)");
    t
}

/// Fig. 9b — analytical remaining nodes over time for speeds 2/4/8 m/s at
/// density 200 per km^2, H = 5 (Eq. 15).
pub fn fig9b() -> FigureTable {
    let mut t = FigureTable::new(
        "Fig. 9b — estimated remaining nodes vs time, rho=200, H=5 (analytical, Eq. 15)",
        "t (s)",
        vec!["v=2".into(), "v=4".into(), "v=8".into()],
    );
    let d = 200.0 / (L * L);
    for ti in (0..=40).step_by(5) {
        let vals: Vec<String> = [2.0, 4.0, 8.0]
            .iter()
            .map(|v| format!("{:.2}", remaining_nodes(5, L, L, d, *v, ti as f64)))
            .collect();
        t.row(ti.to_string(), vals);
    }
    t.note("expected shape: faster nodes leave the zone sooner (paper Fig. 9b)");
    t
}

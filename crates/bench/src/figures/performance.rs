//! Routing-performance figures (Section 5.6): Figs. 14a/b, 15a/b, 16a/b,
//! and the mobility-model comparison Fig. 17.

use crate::runner::{sweep_point, ProtocolChoice};
use crate::table::FigureTable;
use alert_core::AlertConfig;
use alert_sim::{LocationPolicy, Metrics, MobilityKind, ScenarioConfig};

const NODE_SWEEP: [usize; 4] = [50, 100, 150, 200];
const SPEED_SWEEP: [f64; 4] = [2.0, 4.0, 6.0, 8.0];

fn all_protocols() -> [ProtocolChoice; 4] {
    [
        ProtocolChoice::Alert(AlertConfig::default()),
        ProtocolChoice::Gpsr,
        ProtocolChoice::Alarm,
        ProtocolChoice::Ao2p,
    ]
}

fn latency_ms(m: &Metrics) -> f64 {
    m.mean_latency().map_or(f64::NAN, |l| l * 1000.0)
}

/// Fig. 14a — latency per packet vs number of nodes, all four protocols.
pub fn fig14a(runs: usize) -> FigureTable {
    let mut t = FigureTable::new(
        "Fig. 14a — latency per packet (ms) vs number of nodes (simulated)",
        "nodes",
        all_protocols()
            .iter()
            .map(|p| p.name().to_owned())
            .collect(),
    );
    for nodes in NODE_SWEEP {
        let cfg = ScenarioConfig::default().with_nodes(nodes);
        let vals: Vec<String> = all_protocols()
            .iter()
            .map(|p| format!("{:.1}", sweep_point(*p, &cfg, runs, latency_ms)))
            .collect();
        t.row(nodes.to_string(), vals);
    }
    t.note("expected shape: ALARM/AO2P dominated by per-hop public-key cost (100s of ms), AO2P > ALARM;");
    t.note("ALERT slightly above GPSR (symmetric crypto only); all decrease with density (paper Fig. 14a)");
    t
}

/// Fig. 14b — latency per packet vs node speed, with and without
/// destination location update, for ALERT and GPSR (the update toggle is
/// what the figure varies; ALARM/AO2P shown with updates).
pub fn fig14b(runs: usize) -> FigureTable {
    let mut t = FigureTable::new(
        "Fig. 14b — latency per packet (ms) vs node speed (simulated)",
        "v (m/s)",
        vec![
            "ALERT upd".into(),
            "ALERT no-upd".into(),
            "GPSR upd".into(),
            "GPSR no-upd".into(),
            "ALARM upd".into(),
            "AO2P upd".into(),
        ],
    );
    for v in SPEED_SWEEP {
        let upd = ScenarioConfig::default().with_speed(v);
        let noupd = upd.clone().with_location(LocationPolicy::SessionStart);
        let alert = ProtocolChoice::Alert(AlertConfig::default());
        let vals = vec![
            format!("{:.1}", sweep_point(alert, &upd, runs, latency_ms)),
            format!("{:.1}", sweep_point(alert, &noupd, runs, latency_ms)),
            format!(
                "{:.1}",
                sweep_point(ProtocolChoice::Gpsr, &upd, runs, latency_ms)
            ),
            format!(
                "{:.1}",
                sweep_point(ProtocolChoice::Gpsr, &noupd, runs, latency_ms)
            ),
            format!(
                "{:.1}",
                sweep_point(ProtocolChoice::Alarm, &upd, runs, latency_ms)
            ),
            format!(
                "{:.1}",
                sweep_point(ProtocolChoice::Ao2p, &upd, runs, latency_ms)
            ),
        ];
        t.row(format!("{v:.0}"), vals);
    }
    t.note("expected shape: with updates latency is speed-stable; without updates it creeps up (paper Fig. 14b)");
    t
}

/// Fig. 15a — hops per packet vs number of nodes, including the
/// "ALARM (include id dissemination hops)" series.
pub fn fig15a(runs: usize) -> FigureTable {
    let mut t = FigureTable::new(
        "Fig. 15a — hops per packet vs number of nodes (simulated)",
        "nodes",
        vec![
            "ALERT".into(),
            "GPSR".into(),
            "ALARM".into(),
            "AO2P".into(),
            "ALARM+dissem".into(),
        ],
    );
    for nodes in NODE_SWEEP {
        let cfg = ScenarioConfig::default().with_nodes(nodes);
        let mut vals: Vec<String> = all_protocols()
            .iter()
            .map(|p| {
                format!(
                    "{:.2}",
                    sweep_point(*p, &cfg, runs, Metrics::hops_per_packet)
                )
            })
            .collect();
        // Reorder: ALERT, GPSR, ALARM, AO2P already; append ALARM+dissem.
        let with_dissem = sweep_point(
            ProtocolChoice::Alarm,
            &cfg,
            runs,
            Metrics::hops_per_packet_with_control,
        );
        vals.push(format!("{with_dissem:.2}"));
        t.row(nodes.to_string(), vals);
    }
    t.note(
        "expected shape: ALERT a few hops above the greedy baselines; ALARM+dissemination roughly",
    );
    t.note("double ALERT's hop count (paper Fig. 15a)");
    t
}

/// Fig. 15b — hops per packet vs node speed, with/without destination
/// update.
pub fn fig15b(runs: usize) -> FigureTable {
    let mut t = FigureTable::new(
        "Fig. 15b — hops per packet vs node speed (simulated)",
        "v (m/s)",
        vec![
            "ALERT upd".into(),
            "ALERT no-upd".into(),
            "GPSR upd".into(),
            "GPSR no-upd".into(),
            "ALARM+dissem".into(),
        ],
    );
    for v in SPEED_SWEEP {
        let upd = ScenarioConfig::default().with_speed(v);
        let noupd = upd.clone().with_location(LocationPolicy::SessionStart);
        let alert = ProtocolChoice::Alert(AlertConfig::default());
        let vals = vec![
            format!(
                "{:.2}",
                sweep_point(alert, &upd, runs, Metrics::hops_per_packet)
            ),
            format!(
                "{:.2}",
                sweep_point(alert, &noupd, runs, Metrics::hops_per_packet)
            ),
            format!(
                "{:.2}",
                sweep_point(ProtocolChoice::Gpsr, &upd, runs, Metrics::hops_per_packet)
            ),
            format!(
                "{:.2}",
                sweep_point(ProtocolChoice::Gpsr, &noupd, runs, Metrics::hops_per_packet)
            ),
            format!(
                "{:.2}",
                sweep_point(
                    ProtocolChoice::Alarm,
                    &upd,
                    runs,
                    Metrics::hops_per_packet_with_control
                )
            ),
        ];
        t.row(format!("{v:.0}"), vals);
    }
    t.note("expected shape: hops grow with speed when the destination position is stale; stable with updates (paper Fig. 15b)");
    t
}

/// Fig. 16a — delivery rate vs number of nodes (with destination update).
pub fn fig16a(runs: usize) -> FigureTable {
    let mut t = FigureTable::new(
        "Fig. 16a — delivery rate vs number of nodes, with destination update (simulated)",
        "nodes",
        all_protocols()
            .iter()
            .map(|p| p.name().to_owned())
            .collect(),
    );
    for nodes in NODE_SWEEP {
        let cfg = ScenarioConfig::default().with_nodes(nodes);
        let vals: Vec<String> = all_protocols()
            .iter()
            .map(|p| format!("{:.3}", sweep_point(*p, &cfg, runs, Metrics::delivery_rate)))
            .collect();
        t.row(nodes.to_string(), vals);
    }
    t.note("expected shape: near 1 everywhere except the sparse 50-node case (paper Fig. 16a)");
    t
}

/// Fig. 16b — delivery rate vs node speed, with/without destination
/// update.
pub fn fig16b(runs: usize) -> FigureTable {
    let mut t = FigureTable::new(
        "Fig. 16b — delivery rate vs node speed (simulated)",
        "v (m/s)",
        vec![
            "ALERT upd".into(),
            "ALERT no-upd".into(),
            "GPSR upd".into(),
            "GPSR no-upd".into(),
        ],
    );
    for v in SPEED_SWEEP {
        let upd = ScenarioConfig::default().with_speed(v);
        let noupd = upd.clone().with_location(LocationPolicy::SessionStart);
        let alert = ProtocolChoice::Alert(AlertConfig::default());
        let vals = vec![
            format!(
                "{:.3}",
                sweep_point(alert, &upd, runs, Metrics::delivery_rate)
            ),
            format!(
                "{:.3}",
                sweep_point(alert, &noupd, runs, Metrics::delivery_rate)
            ),
            format!(
                "{:.3}",
                sweep_point(ProtocolChoice::Gpsr, &upd, runs, Metrics::delivery_rate)
            ),
            format!(
                "{:.3}",
                sweep_point(ProtocolChoice::Gpsr, &noupd, runs, Metrics::delivery_rate)
            ),
        ];
        t.row(format!("{v:.0}"), vals);
    }
    t.note("expected shape: stable with updates; decays with speed without them, with ALERT above GPSR");
    t.note("thanks to the final zone broadcast (paper Fig. 16b)");
    t
}

/// Fig. 17 — ALERT delay under random waypoint vs group mobility
/// (10 groups / 150 m and 5 groups / 200 m). Hops and delivery are shown
/// alongside latency: clustering makes routes more tortuous (the paper's
/// effect), while our bounded retransmission window turns long
/// inter-cluster outages into losses rather than huge delays, which
/// biases the *conditional* latency of the 5-group setting downwards.
pub fn fig17(runs: usize) -> FigureTable {
    let mut t = FigureTable::new(
        "Fig. 17 — ALERT under different movement models (simulated)",
        "v (m/s)",
        vec![
            "RWP lat(ms)".into(),
            "G10x150 lat".into(),
            "G5x200 lat".into(),
            "RWP hops".into(),
            "G10 hops".into(),
            "G5 hops".into(),
            "G5 delivery".into(),
        ],
    );
    let alert = ProtocolChoice::Alert(AlertConfig::default());
    for v in SPEED_SWEEP {
        let rwp = ScenarioConfig::default().with_speed(v);
        let g10 = rwp.clone().with_mobility(MobilityKind::Group {
            groups: 10,
            range: 150.0,
        });
        let g5 = rwp.clone().with_mobility(MobilityKind::Group {
            groups: 5,
            range: 200.0,
        });
        let vals = vec![
            format!("{:.1}", sweep_point(alert, &rwp, runs, latency_ms)),
            format!("{:.1}", sweep_point(alert, &g10, runs, latency_ms)),
            format!("{:.1}", sweep_point(alert, &g5, runs, latency_ms)),
            format!(
                "{:.1}",
                sweep_point(alert, &rwp, runs, Metrics::hops_per_packet).mean
            ),
            format!(
                "{:.1}",
                sweep_point(alert, &g10, runs, Metrics::hops_per_packet).mean
            ),
            format!(
                "{:.1}",
                sweep_point(alert, &g5, runs, Metrics::hops_per_packet).mean
            ),
            format!(
                "{:.2}",
                sweep_point(alert, &g5, runs, Metrics::delivery_rate).mean
            ),
        ];
        t.row(format!("{v:.0}"), vals);
    }
    t.note("expected shape: group mobility costs more than random waypoint, 5 groups more than 10");
    t.note(
        "(paper Fig. 17); the hop columns show it directly. The 5-group latency column is biased",
    );
    t.note(
        "low because persistently disconnected inter-cluster pairs register as losses (delivery",
    );
    t.note("column) instead of extreme delays under our bounded retransmission window.");
    t
}

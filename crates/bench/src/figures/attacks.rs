//! Attack-experiment outputs: the Section 3.3 intersection-attack
//! demonstration (Fig. 5c) and Table 1.

use crate::table::FigureTable;
use alert_adversary::{IntersectionAttack, IntersectionOutcome, RecipientSet};
use alert_core::{Alert, AlertConfig};
use alert_sim::{NodeId, ScenarioConfig, SessionId, World};
use rayon::prelude::*;

/// Runs one intersection-attack session against ALERT with or without the
/// Section 3.3 defense and reports the attacker's outcome.
pub fn intersection_outcome(defense: bool, seed: u64) -> IntersectionOutcome {
    let mut cfg = ScenarioConfig::default().with_duration(60.0);
    cfg.speed = 4.0;
    cfg.traffic.pairs = 1;
    let acfg = if defense {
        AlertConfig::default().with_intersection_defense(3)
    } else {
        AlertConfig::default()
    };
    let mut w = World::new(cfg, seed, move |_, _| Alert::new(acfg));
    let dst = w.sessions()[0].dst;
    let nodes = w.config().nodes;
    let range = w.config().mac.range_m;
    let mut attack = IntersectionAttack::new();
    let mut seen = vec![0usize; nodes];
    let mut t = 0.0;
    while t < 60.0 {
        t += 0.5;
        w.run_until(t);
        #[allow(clippy::needless_range_loop)] // i doubles as the NodeId
        for i in 0..nodes {
            let node = NodeId(i);
            let records = &w.protocol(node).zone_deliveries;
            for rec in records.iter().skip(seen[i]) {
                if rec.session != SessionId(0) {
                    continue;
                }
                let recipients: RecipientSet = match &rec.holders {
                    Some(holders) => holders
                        .iter()
                        .filter_map(|p| w.pseudonym_owner(*p))
                        .collect(),
                    None => {
                        let delivered_now = w.metrics().packets.iter().any(|p| {
                            p.session == rec.session
                                && p.seq == rec.seq
                                && p.delivered_at
                                    .is_some_and(|d| d >= rec.time - 1e-9 && d <= rec.time + 2.5)
                        });
                        if !delivered_now {
                            continue;
                        }
                        w.nodes_within(w.position(node), range)
                            .into_iter()
                            .collect()
                    }
                };
                if !recipients.is_empty() {
                    attack.observe(&recipients);
                }
            }
            seen[i] = records.len();
        }
    }
    IntersectionOutcome {
        rounds: attack.rounds(),
        final_candidates: attack.anonymity_degree(),
        identified: attack.identified(dst),
        destination_excluded: attack.destination_excluded(dst),
    }
}

/// Fig. 5c demonstration — the intersection attack against plain zone
/// broadcast vs the two-step countermeasure, aggregated over seeds.
pub fn fig5c(runs: usize) -> FigureTable {
    let mut t = FigureTable::new(
        "Fig. 5c — intersection attack vs ALERT's countermeasure (simulated, Section 3.3)",
        "defense",
        vec![
            "rounds".into(),
            "final candidates".into(),
            "D identified %".into(),
            "D excluded %".into(),
        ],
    );
    for defense in [false, true] {
        let outcomes: Vec<IntersectionOutcome> = (0..runs as u64)
            .into_par_iter()
            .map(|s| intersection_outcome(defense, 0xF1_6C + s * 104729))
            .collect();
        let n = outcomes.len() as f64;
        let rounds = outcomes.iter().map(|o| o.rounds as f64).sum::<f64>() / n;
        let cands = outcomes
            .iter()
            .map(|o| o.final_candidates.min(1000) as f64)
            .sum::<f64>()
            / n;
        let ident = outcomes.iter().filter(|o| o.identified).count() as f64 / n * 100.0;
        let excl = outcomes.iter().filter(|o| o.destination_excluded).count() as f64 / n * 100.0;
        t.row(
            if defense {
                "two-step (m=3)"
            } else {
                "plain broadcast"
            },
            vec![
                format!("{rounds:.0}"),
                format!("{cands:.1}"),
                format!("{ident:.0}"),
                format!("{excl:.0}"),
            ],
        );
    }
    t.note(
        "expected shape: plain broadcast converges towards identifying D; the defense excludes D",
    );
    t.note("from some round's intended recipients, permanently foiling the intersection (paper Fig. 5)");
    t
}

/// Table 1 — the protocol taxonomy.
pub fn table1() -> String {
    format!(
        "## Table 1 — anonymous routing protocols in MANETs\n\n{}\n",
        alert_protocols::taxonomy::render_table1()
    )
}

//! Crash-safe campaign orchestration for the `repro` binary: atomic
//! artifact writes, a JSONL manifest journal, and a failure report.
//!
//! A long `repro all --runs 30` campaign can die halfway — OOM kill,
//! Ctrl-C, power loss. This module gives it three properties:
//!
//! 1. **Atomic artifacts** — [`write_atomic`] stages every CSV/report to
//!    a temp file in the same directory and `rename`s it into place, so
//!    a reader (or a resumed campaign) never observes a half-written
//!    file.
//! 2. **A journal** — after each experiment completes, one
//!    [`ManifestEntry`] line is appended to `manifest.jsonl` in the
//!    `--csv` directory. Appends are line-atomic in practice and a torn
//!    trailing line (the crash case) is tolerated on re-open; at worst
//!    one experiment is re-run.
//! 3. **Resume** — `repro --resume` consults [`Journal::completed`]
//!    and skips experiments already journaled as done *with a matching
//!    config fingerprint* ([`fingerprint`] covers the target name, the
//!    `--runs` count, and the schema version), so changing the campaign
//!    shape invalidates stale entries instead of silently reusing them.
//!
//! Like the trace codec and the perf report, the journal is
//! hand-formatted JSONL with a stable key order: it must be writable
//! and parseable without a JSON library at runtime, and diffable by
//! eye. The schema is `alert-repro-manifest/2`:
//!
//! ```json
//! {"target":"fig9a","fingerprint":1234,"runs":30,"status":"done","wall_s":12.5}
//! {"rec":"lease","target":"fig9b","fingerprint":99,"worker":1,"attempt":1,"deadline_s":612.5}
//! ```
//!
//! Version 2 adds [`LeaseEntry`] lines for the parallel executor (see
//! [`crate::pool`]): a worker journals a lease when it claims a unit,
//! and the committer journals the terminal `done`/`failed` line after
//! the artifacts are renamed into place. A lease with no later terminal
//! line is an *orphan* — the worker died mid-unit — and `--resume`
//! simply re-runs that point. v1 journals remain readable (they just
//! contain no lease lines); v1 *parsers* skip the new lease lines
//! because they reject objects with unknown keys. The schema string is
//! part of every fingerprint, so the 1→2 bump deliberately invalidates
//! v1 completion entries: resumed campaigns re-run them instead of
//! trusting records written under the old discipline.
//!
//! Failed experiments are quarantined rather than resumed-over: they
//! are journaled with `"status":"failed"` (never matched by
//! [`Journal::completed`]) and detailed per-run in `failures.jsonl`
//! via [`FailureSink`], one [`FailureEntry`] per quarantined run with
//! its one-line `simrun` replay command.
//!
//! Torn-tail healing assumes a **single writer** per output directory;
//! [`DirLock`] enforces that with an advisory `.orchestrator.lock`
//! file, so two orchestrators racing on one `--csv` dir fail fast with
//! a usage error instead of silently interleaving journal lines.

use crate::runner::FailureRecord;
use std::fmt::Write as _;
use std::fs;
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};

/// File name of the manifest journal inside the `--csv` directory.
pub const MANIFEST_FILE: &str = "manifest.jsonl";

/// File name of the failure report inside the `--csv` directory.
pub const FAILURES_FILE: &str = "failures.jsonl";

/// File name of the advisory single-orchestrator lock inside the
/// output directory.
pub const LOCK_FILE: &str = ".orchestrator.lock";

/// Journal schema tag; part of every fingerprint, so bumping it
/// invalidates all previously journaled points at once.
const SCHEMA: &str = "alert-repro-manifest/2";

// ---------------------------------------------------------------------
// Fingerprint
// ---------------------------------------------------------------------

fn fnv1a(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Config fingerprint of one campaign point: FNV-1a over the schema
/// version, the target name, and the runs count (NUL-separated so
/// field boundaries can't alias). A journaled entry only counts as
/// completed when its fingerprint matches the current invocation's.
pub fn fingerprint(target: &str, runs: usize) -> u64 {
    fingerprint_with(&[target.as_bytes(), &(runs as u64).to_le_bytes()])
}

/// Generalized config fingerprint: FNV-1a over the schema version and
/// the given byte fields, NUL-separated so field boundaries can't
/// alias. [`fingerprint`] is the two-field special case; `simcheck`
/// uses this directly to key fuzz cases by `(master seed, case index,
/// plant)`.
pub fn fingerprint_with(parts: &[&[u8]]) -> u64 {
    let mut h = fnv1a(0xcbf2_9ce4_8422_2325, SCHEMA.as_bytes());
    for part in parts {
        h = fnv1a(h, &[0]);
        h = fnv1a(h, part);
    }
    h
}

// ---------------------------------------------------------------------
// Atomic writes
// ---------------------------------------------------------------------

/// Writes `contents` to `path` atomically: stage to a sibling temp
/// file, fsync, then rename into place. A crash mid-write leaves either
/// the old file or the new one, never a truncated hybrid. (The stale
/// temp file a crash can leave behind is overwritten by the next
/// attempt.)
pub fn write_atomic(path: &Path, contents: &str) -> io::Result<()> {
    let file_name = path
        .file_name()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "path has no file name"))?;
    let mut tmp_name = std::ffi::OsString::from(".");
    tmp_name.push(file_name);
    tmp_name.push(".tmp");
    let tmp = path.with_file_name(tmp_name);
    {
        let mut f = fs::File::create(&tmp)?;
        f.write_all(contents.as_bytes())?;
        f.sync_all()?;
    }
    fs::rename(&tmp, path)
}

// ---------------------------------------------------------------------
// Manifest entries
// ---------------------------------------------------------------------

/// Outcome of one journaled experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EntryStatus {
    /// The experiment completed and its artifacts were renamed into
    /// place; `--resume` may skip it.
    Done,
    /// The experiment failed (panic, abort, or I/O error); `--resume`
    /// re-runs it.
    Failed,
}

impl EntryStatus {
    /// Stable on-disk token.
    pub fn as_str(self) -> &'static str {
        match self {
            EntryStatus::Done => "done",
            EntryStatus::Failed => "failed",
        }
    }

    fn parse(s: &str) -> Option<Self> {
        match s {
            "done" => Some(EntryStatus::Done),
            "failed" => Some(EntryStatus::Failed),
            _ => None,
        }
    }
}

/// One line of the manifest journal: the outcome of one experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct ManifestEntry {
    /// Experiment name as given on the `repro` command line.
    pub target: String,
    /// [`fingerprint`] of the invocation that produced this entry.
    pub fingerprint: u64,
    /// Monte-Carlo runs per point the entry was produced with.
    pub runs: usize,
    /// Outcome.
    pub status: EntryStatus,
    /// Wall-clock seconds the experiment took.
    pub wall_s: f64,
}

impl ManifestEntry {
    /// Encodes the entry as one JSONL line (no trailing newline),
    /// stable key order.
    pub fn to_jsonl(&self) -> String {
        let mut s = String::from("{\"target\":");
        push_str_escaped(&mut s, &self.target);
        let _ = write!(
            s,
            ",\"fingerprint\":{},\"runs\":{},\"status\":\"{}\",\"wall_s\":{:?}}}",
            self.fingerprint,
            self.runs,
            self.status.as_str(),
            self.wall_s
        );
        s
    }

    /// Decodes one journal line; `None` on any malformation (the
    /// journal treats such lines as torn and ignores them).
    pub fn parse_line(line: &str) -> Option<Self> {
        let fields = parse_flat_object(line)?;
        let mut target = None;
        let mut fp = None;
        let mut runs = None;
        let mut status = None;
        let mut wall_s = None;
        for (key, val) in fields {
            match (key.as_str(), val) {
                ("target", Val::Str(s)) => target = Some(s),
                ("fingerprint", Val::Num(n)) => fp = n.parse::<u64>().ok(),
                ("runs", Val::Num(n)) => runs = n.parse::<usize>().ok(),
                ("status", Val::Str(s)) => status = EntryStatus::parse(&s),
                ("wall_s", Val::Num(n)) => wall_s = n.parse::<f64>().ok(),
                _ => return None,
            }
        }
        Some(ManifestEntry {
            target: target?,
            fingerprint: fp?,
            runs: runs?,
            status: status?,
            wall_s: wall_s?,
        })
    }
}

// ---------------------------------------------------------------------
// Lease entries (schema v2)
// ---------------------------------------------------------------------

/// One lease line in the manifest journal: worker `worker` claimed the
/// unit `fingerprint` (attempt `attempt`) and promised to finish it by
/// `deadline_s` on the claiming orchestrator's monotonic clock.
///
/// Lease lines are provenance, not authority: in-process the live
/// [`LeaseQueue`](crate::pool::LeaseQueue) arbitrates claims, and on
/// `--resume` a lease with no later terminal entry simply marks a unit
/// the dead run never finished — it is reclaimed by re-running.
#[derive(Debug, Clone, PartialEq)]
pub struct LeaseEntry {
    /// Experiment target / case label the lease covers.
    pub target: String,
    /// Unit fingerprint (same keying as [`ManifestEntry`]).
    pub fingerprint: u64,
    /// Worker id that claimed the unit.
    pub worker: usize,
    /// 1-based attempt number this lease runs.
    pub attempt: u32,
    /// Lease deadline, seconds on the claiming pool's monotonic clock.
    pub deadline_s: f64,
}

impl LeaseEntry {
    /// Encodes the lease as one JSONL line (no trailing newline),
    /// stable key order. The `"rec":"lease"` discriminator comes first
    /// so v1 parsers (which reject unknown keys) skip the line whole.
    pub fn to_jsonl(&self) -> String {
        let mut s = String::from("{\"rec\":\"lease\",\"target\":");
        push_str_escaped(&mut s, &self.target);
        let _ = write!(
            s,
            ",\"fingerprint\":{},\"worker\":{},\"attempt\":{},\"deadline_s\":{:?}}}",
            self.fingerprint, self.worker, self.attempt, self.deadline_s
        );
        s
    }

    /// Decodes one lease line; `None` on malformation or when the line
    /// is not a lease record.
    pub fn parse_line(line: &str) -> Option<Self> {
        let fields = parse_flat_object(line)?;
        let mut is_lease = false;
        let mut target = None;
        let mut fp = None;
        let mut worker = None;
        let mut attempt = None;
        let mut deadline_s = None;
        for (key, val) in fields {
            match (key.as_str(), val) {
                ("rec", Val::Str(s)) => is_lease = s == "lease",
                ("target", Val::Str(s)) => target = Some(s),
                ("fingerprint", Val::Num(n)) => fp = n.parse::<u64>().ok(),
                ("worker", Val::Num(n)) => worker = n.parse::<usize>().ok(),
                ("attempt", Val::Num(n)) => attempt = n.parse::<u32>().ok(),
                ("deadline_s", Val::Num(n)) => deadline_s = n.parse::<f64>().ok(),
                _ => return None,
            }
        }
        if !is_lease {
            return None;
        }
        Some(LeaseEntry {
            target: target?,
            fingerprint: fp?,
            worker: worker?,
            attempt: attempt?,
            deadline_s: deadline_s?,
        })
    }
}

// ---------------------------------------------------------------------
// Journal
// ---------------------------------------------------------------------

/// The append-only manifest journal backing `repro --resume`.
#[derive(Debug)]
pub struct Journal {
    path: PathBuf,
    entries: Vec<ManifestEntry>,
    leases: Vec<LeaseEntry>,
}

impl Journal {
    /// Opens (or implicitly creates) the journal in `dir`. A missing
    /// file yields an empty journal; unparseable lines — the torn
    /// trailing line a crash can leave — are skipped, which at worst
    /// re-runs the experiment that was mid-journal when the process
    /// died. An unterminated tail is healed with a newline so the next
    /// [`record`](Journal::record) can't merge into the torn fragment.
    pub fn open(dir: &Path) -> io::Result<Journal> {
        let path = dir.join(MANIFEST_FILE);
        let mut entries = Vec::new();
        let mut leases = Vec::new();
        match fs::read_to_string(&path) {
            Ok(text) => {
                if !text.is_empty() && !text.ends_with('\n') {
                    let mut f = fs::OpenOptions::new().append(true).open(&path)?;
                    f.write_all(b"\n")?;
                    f.sync_all()?;
                }
                for line in text.lines().filter(|l| !l.trim().is_empty()) {
                    if let Some(e) = ManifestEntry::parse_line(line) {
                        entries.push(e);
                    } else if let Some(l) = LeaseEntry::parse_line(line) {
                        leases.push(l);
                    }
                }
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => {}
            Err(e) => return Err(e),
        }
        Ok(Journal {
            path,
            entries,
            leases,
        })
    }

    /// Entries read at open plus those recorded since.
    pub fn entries(&self) -> &[ManifestEntry] {
        &self.entries
    }

    /// Lease lines read at open plus those recorded since.
    pub fn leases(&self) -> &[LeaseEntry] {
        &self.leases
    }

    /// Fingerprints with a journaled lease but no terminal
    /// `done`/`failed` entry — the in-flight units a dead orchestrator
    /// orphaned. `--resume` reports these and re-runs them.
    pub fn orphaned_leases(&self) -> Vec<&LeaseEntry> {
        let mut seen = std::collections::BTreeSet::new();
        self.leases
            .iter()
            .filter(|l| {
                self.entries.iter().all(|e| e.fingerprint != l.fingerprint)
                    && seen.insert(l.fingerprint)
            })
            .collect()
    }

    /// True when `target` is journaled as [`EntryStatus::Done`] with
    /// the given fingerprint — the `--resume` skip test. A later
    /// `failed` entry for the same point does not un-complete it (the
    /// artifacts of the earlier success are still on disk, atomically).
    pub fn completed(&self, target: &str, fp: u64) -> bool {
        self.entries
            .iter()
            .any(|e| e.status == EntryStatus::Done && e.target == target && e.fingerprint == fp)
    }

    /// Appends one entry line and flushes it to disk before returning,
    /// then mirrors it into the in-memory view.
    pub fn record(&mut self, entry: ManifestEntry) -> io::Result<()> {
        let mut f = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&self.path)?;
        let mut line = entry.to_jsonl();
        line.push('\n');
        f.write_all(line.as_bytes())?;
        f.sync_all()?;
        self.entries.push(entry);
        Ok(())
    }

    /// Appends one lease line and flushes it to disk before returning,
    /// then mirrors it into the in-memory view.
    pub fn record_lease(&mut self, lease: LeaseEntry) -> io::Result<()> {
        let mut f = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&self.path)?;
        let mut line = lease.to_jsonl();
        line.push('\n');
        f.write_all(line.as_bytes())?;
        f.sync_all()?;
        self.leases.push(lease);
        Ok(())
    }
}

// ---------------------------------------------------------------------
// Advisory single-orchestrator lock
// ---------------------------------------------------------------------

/// Why [`DirLock::acquire`] failed.
#[derive(Debug)]
pub enum LockError {
    /// Another live orchestrator (with the given PID, when readable)
    /// holds the directory.
    Busy {
        /// PID read from the lock file, if it parsed.
        pid: Option<u32>,
    },
    /// Filesystem error creating or inspecting the lock.
    Io(io::Error),
}

impl std::fmt::Display for LockError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LockError::Busy { pid: Some(pid) } => write!(
                f,
                "another orchestrator (pid {pid}) holds this output directory"
            ),
            LockError::Busy { pid: None } => {
                write!(f, "another orchestrator holds this output directory")
            }
            LockError::Io(e) => write!(f, "lock file error: {e}"),
        }
    }
}

/// Advisory lock asserting single-committer ownership of an output
/// directory: journal torn-tail healing and the staged-merge discipline
/// both assume exactly one orchestrator writes `manifest.jsonl` at a
/// time. The lock is a `.orchestrator.lock` file created with
/// `O_EXCL` and holding the owner's PID; a stale lock (owner no longer
/// alive) is stolen, a live one is a hard [`LockError::Busy`] the
/// binaries turn into an exit-2 usage diagnostic. Dropped on scope
/// exit; a SIGKILL'd owner leaves a stale file the next run reclaims.
#[derive(Debug)]
pub struct DirLock {
    path: PathBuf,
}

impl DirLock {
    /// Claims the advisory lock in `dir`, stealing it when the recorded
    /// owner is dead.
    pub fn acquire(dir: &Path) -> Result<DirLock, LockError> {
        let path = dir.join(LOCK_FILE);
        // Two tries: one against a possibly-stale existing file, one
        // after removing it. A third failure means a live race.
        for _ in 0..2 {
            match fs::OpenOptions::new()
                .write(true)
                .create_new(true)
                .open(&path)
            {
                Ok(mut f) => {
                    let _ = writeln!(f, "{}", std::process::id());
                    let _ = f.sync_all();
                    return Ok(DirLock { path });
                }
                Err(e) if e.kind() == io::ErrorKind::AlreadyExists => {
                    let pid = fs::read_to_string(&path)
                        .ok()
                        .and_then(|s| s.trim().parse::<u32>().ok());
                    match pid {
                        Some(pid) if pid != std::process::id() && pid_alive(pid) => {
                            return Err(LockError::Busy { pid: Some(pid) });
                        }
                        Some(_) => {
                            // Stale (owner dead) or our own leftover:
                            // remove and retry the exclusive create.
                            let _ = fs::remove_file(&path);
                        }
                        None => return Err(LockError::Busy { pid: None }),
                    }
                }
                Err(e) => return Err(LockError::Io(e)),
            }
        }
        Err(LockError::Busy { pid: None })
    }
}

impl Drop for DirLock {
    fn drop(&mut self) {
        let _ = fs::remove_file(&self.path);
    }
}

/// Best-effort liveness probe for a PID. On Linux `/proc/<pid>` is
/// authoritative; on other Unixes we fall back to a `kill -0`-style
/// probe (signal 0 delivers nothing but reports whether the process
/// exists), so stale-lock stealing works portably. Anywhere else we
/// conservatively report alive — stale locks there need manual removal
/// rather than risking a steal from a live process.
fn pid_alive(pid: u32) -> bool {
    if cfg!(target_os = "linux") {
        Path::new(&format!("/proc/{pid}")).exists()
    } else if cfg!(unix) {
        pid_alive_kill0(pid)
    } else {
        true
    }
}

/// `kill(pid, 0)`-style probe via the portable `kill` utility: signal 0
/// delivers nothing but reports whether the target exists. Exit 0 means
/// alive; a nonzero exit only proves death when the diagnostic names a
/// missing process (EPERM also fails the signal, but the process
/// exists). A spawn failure is treated as alive, the conservative
/// answer — never steal a lock we cannot prove stale.
fn pid_alive_kill0(pid: u32) -> bool {
    match std::process::Command::new("kill")
        .args(["-0", &pid.to_string()])
        .output()
    {
        Ok(out) if out.status.success() => true,
        Ok(out) => !String::from_utf8_lossy(&out.stderr)
            .to_lowercase()
            .contains("no such process"),
        Err(_) => true,
    }
}

// ---------------------------------------------------------------------
// Failure report
// ---------------------------------------------------------------------

/// One quarantined run in the failure report: a
/// [`FailureRecord`](crate::runner::FailureRecord) plus the experiment
/// it happened under.
#[derive(Debug, Clone, PartialEq)]
pub struct FailureEntry {
    /// Experiment name the run belonged to.
    pub target: String,
    /// Protocol display name of the failed run.
    pub protocol: String,
    /// Node count of the failed run.
    pub nodes: usize,
    /// Seed of the failed run.
    pub seed: u64,
    /// Human-readable error ("panicked: ...", "run aborted: ...").
    pub error: String,
    /// One-line `simrun` command reproducing the failing point.
    pub replay: String,
}

impl FailureEntry {
    /// Binds a runner ledger record to the experiment it surfaced in.
    pub fn from_record(target: &str, r: FailureRecord) -> FailureEntry {
        FailureEntry {
            target: target.to_owned(),
            protocol: r.protocol,
            nodes: r.nodes,
            seed: r.seed,
            error: r.error,
            replay: r.replay,
        }
    }

    /// Encodes the entry as one JSONL line (no trailing newline),
    /// stable key order.
    pub fn to_jsonl(&self) -> String {
        let mut s = String::from("{\"target\":");
        push_str_escaped(&mut s, &self.target);
        s.push_str(",\"protocol\":");
        push_str_escaped(&mut s, &self.protocol);
        let _ = write!(
            s,
            ",\"nodes\":{},\"seed\":{},\"error\":",
            self.nodes, self.seed
        );
        push_str_escaped(&mut s, &self.error);
        s.push_str(",\"replay\":");
        push_str_escaped(&mut s, &self.replay);
        s.push('}');
        s
    }

    /// Decodes one failure line; `None` on malformation.
    pub fn parse_line(line: &str) -> Option<Self> {
        let fields = parse_flat_object(line)?;
        let mut target = None;
        let mut protocol = None;
        let mut nodes = None;
        let mut seed = None;
        let mut error = None;
        let mut replay = None;
        for (key, val) in fields {
            match (key.as_str(), val) {
                ("target", Val::Str(s)) => target = Some(s),
                ("protocol", Val::Str(s)) => protocol = Some(s),
                ("nodes", Val::Num(n)) => nodes = n.parse::<usize>().ok(),
                ("seed", Val::Num(n)) => seed = n.parse::<u64>().ok(),
                ("error", Val::Str(s)) => error = Some(s),
                ("replay", Val::Str(s)) => replay = Some(s),
                _ => return None,
            }
        }
        Some(FailureEntry {
            target: target?,
            protocol: protocol?,
            nodes: nodes?,
            seed: seed?,
            error: error?,
            replay: replay?,
        })
    }
}

/// Append-only writer for the campaign failure report. The file is
/// only created on the first failure, so a clean campaign leaves no
/// `failures.jsonl` behind.
#[derive(Debug)]
pub struct FailureSink {
    path: PathBuf,
    count: usize,
}

impl FailureSink {
    /// A sink writing to `failures.jsonl` under `dir`.
    pub fn new(dir: &Path) -> FailureSink {
        FailureSink {
            path: dir.join(FAILURES_FILE),
            count: 0,
        }
    }

    /// Appends one failure line, flushed to disk before returning.
    pub fn append(&mut self, entry: &FailureEntry) -> io::Result<()> {
        let mut f = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&self.path)?;
        let mut line = entry.to_jsonl();
        line.push('\n');
        f.write_all(line.as_bytes())?;
        f.sync_all()?;
        self.count += 1;
        Ok(())
    }

    /// Failures appended through this sink.
    pub fn count(&self) -> usize {
        self.count
    }
}

// ---------------------------------------------------------------------
// Minimal flat-object JSONL codec (same escape set as the trace codec)
// ---------------------------------------------------------------------
//
// Public: the `alertd` daemon's wire protocol and job journal speak the
// same flat-object dialect, so they reuse this codec instead of growing
// a third hand-rolled JSON implementation.

/// Appends `s` to `out` as a quoted JSON string with the trace codec's
/// escape set (`"` `\` control characters).
pub fn push_str_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// One value of a flat JSON object: a string or an unparsed numeric
/// token (callers `parse()` it into the width they expect).
#[derive(Debug, Clone, PartialEq)]
pub enum Val {
    /// A JSON string, unescaped.
    Str(String),
    /// A JSON number, kept as its source text.
    Num(String),
}

/// Parses one flat JSON object of string/number values — exactly the
/// shape this module writes. Returns `None` on anything else.
pub fn parse_flat_object(line: &str) -> Option<Vec<(String, Val)>> {
    let mut chars = line.trim().chars().peekable();

    fn parse_string(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> Option<String> {
        let mut s = String::new();
        loop {
            match chars.next()? {
                '"' => return Some(s),
                '\\' => match chars.next()? {
                    '"' => s.push('"'),
                    '\\' => s.push('\\'),
                    '/' => s.push('/'),
                    'n' => s.push('\n'),
                    'r' => s.push('\r'),
                    't' => s.push('\t'),
                    'b' => s.push('\u{8}'),
                    'f' => s.push('\u{c}'),
                    'u' => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            code = code * 16 + chars.next()?.to_digit(16)?;
                        }
                        s.push(char::from_u32(code)?);
                    }
                    _ => return None,
                },
                c => s.push(c),
            }
        }
    }

    if chars.next()? != '{' {
        return None;
    }
    let mut fields = Vec::new();
    loop {
        match chars.next()? {
            '}' => break,
            '"' => {}
            ',' if !fields.is_empty() => {
                if chars.next()? != '"' {
                    return None;
                }
            }
            _ => return None,
        }
        let key = parse_string(&mut chars)?;
        if chars.next()? != ':' {
            return None;
        }
        let val = match *chars.peek()? {
            '"' => {
                chars.next();
                Val::Str(parse_string(&mut chars)?)
            }
            _ => {
                let mut num = String::new();
                while let Some(&c) = chars.peek() {
                    if c == ',' || c == '}' {
                        break;
                    }
                    num.push(c);
                    chars.next();
                }
                if num.is_empty() || !num.chars().all(|c| "0123456789.eE+-".contains(c)) {
                    return None;
                }
                Val::Num(num)
            }
        };
        fields.push((key, val));
    }
    if chars.next().is_some() {
        return None;
    }
    Some(fields)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("alert_orch_{tag}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn entry(target: &str, status: EntryStatus) -> ManifestEntry {
        ManifestEntry {
            target: target.to_owned(),
            fingerprint: fingerprint(target, 30),
            runs: 30,
            status,
            wall_s: 1.25,
        }
    }

    #[test]
    fn fingerprint_is_deterministic_and_sensitive() {
        assert_eq!(fingerprint("fig9a", 30), fingerprint("fig9a", 30));
        assert_ne!(fingerprint("fig9a", 30), fingerprint("fig9a", 31));
        assert_ne!(fingerprint("fig9a", 30), fingerprint("fig9b", 30));
        // Field boundaries don't alias.
        assert_ne!(fingerprint("ab", 1), fingerprint("a", 1));
    }

    #[test]
    fn manifest_entries_round_trip() {
        let e = entry("fig9a", EntryStatus::Done);
        assert_eq!(
            e.to_jsonl(),
            format!(
                "{{\"target\":\"fig9a\",\"fingerprint\":{},\"runs\":30,\
                 \"status\":\"done\",\"wall_s\":1.25}}",
                e.fingerprint
            )
        );
        assert_eq!(ManifestEntry::parse_line(&e.to_jsonl()), Some(e));
    }

    #[test]
    fn hostile_target_names_round_trip() {
        let mut e = entry("x", EntryStatus::Failed);
        e.target = "we\"ird\\name\nwith\tescapes".to_owned();
        assert_eq!(ManifestEntry::parse_line(&e.to_jsonl()), Some(e));
    }

    #[test]
    fn malformed_lines_are_rejected() {
        for line in [
            "",
            "{",
            "{}",
            "not json",
            "{\"target\":\"x\"}",             // missing fields
            "{\"target\":\"x\",\"bogus\":1}", // unknown key
            "{\"target\":7,\"fingerprint\":1,\"runs\":1,\"status\":\"done\",\"wall_s\":1}", // wrong type
        ] {
            assert_eq!(ManifestEntry::parse_line(line), None, "line: {line}");
        }
    }

    #[test]
    fn journal_records_and_resumes() {
        let dir = scratch_dir("journal");
        let mut j = Journal::open(&dir).unwrap();
        assert!(j.entries().is_empty());
        j.record(entry("fig9a", EntryStatus::Done)).unwrap();
        j.record(entry("fig9b", EntryStatus::Failed)).unwrap();

        let j2 = Journal::open(&dir).unwrap();
        assert_eq!(j2.entries().len(), 2);
        assert!(j2.completed("fig9a", fingerprint("fig9a", 30)));
        // Failed entries never count as completed.
        assert!(!j2.completed("fig9b", fingerprint("fig9b", 30)));
        // Fingerprint mismatch (different --runs) never counts.
        assert!(!j2.completed("fig9a", fingerprint("fig9a", 10)));
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn torn_trailing_lines_are_tolerated() {
        let dir = scratch_dir("torn");
        let mut j = Journal::open(&dir).unwrap();
        j.record(entry("fig9a", EntryStatus::Done)).unwrap();
        // Simulate a crash mid-append: a truncated second line.
        let mut f = fs::OpenOptions::new()
            .append(true)
            .open(dir.join(MANIFEST_FILE))
            .unwrap();
        f.write_all(b"{\"target\":\"fig9b\",\"finger").unwrap();
        drop(f);

        let mut j2 = Journal::open(&dir).unwrap();
        assert_eq!(j2.entries().len(), 1);
        assert!(j2.completed("fig9a", fingerprint("fig9a", 30)));
        assert!(!j2.completed("fig9b", fingerprint("fig9b", 30)));
        // Open healed the unterminated tail, so the journal stays
        // appendable: a fresh record lands on its own line.
        j2.record(entry("fig9c", EntryStatus::Done)).unwrap();
        let j3 = Journal::open(&dir).unwrap();
        assert!(j3.completed("fig9c", fingerprint("fig9c", 30)));
        assert_eq!(j3.entries().len(), 2);
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn write_atomic_leaves_no_temp_files() {
        let dir = scratch_dir("atomic");
        let path = dir.join("out.csv");
        write_atomic(&path, "a,b\n1,2\n").unwrap();
        assert_eq!(fs::read_to_string(&path).unwrap(), "a,b\n1,2\n");
        write_atomic(&path, "a,b\n3,4\n").unwrap();
        assert_eq!(fs::read_to_string(&path).unwrap(), "a,b\n3,4\n");
        let leftovers: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().into_string().unwrap())
            .filter(|n| n != "out.csv")
            .collect();
        assert!(leftovers.is_empty(), "stray files: {leftovers:?}");
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn failure_sink_appends_parseable_lines() {
        let dir = scratch_dir("failures");
        let mut sink = FailureSink::new(&dir);
        assert_eq!(sink.count(), 0);
        // A clean campaign creates no file at all.
        assert!(!dir.join(FAILURES_FILE).exists());

        let e = FailureEntry {
            target: "churn".to_owned(),
            protocol: "ALERT".to_owned(),
            nodes: 200,
            seed: 41287,
            error: "panicked: index out of bounds".to_owned(),
            replay: "simrun --protocol alert --nodes 200 --pairs 4 --duration 60 --seed 41287"
                .to_owned(),
        };
        sink.append(&e).unwrap();
        sink.append(&e).unwrap();
        assert_eq!(sink.count(), 2);
        let text = fs::read_to_string(dir.join(FAILURES_FILE)).unwrap();
        let parsed: Vec<_> = text
            .lines()
            .map(|l| FailureEntry::parse_line(l).unwrap())
            .collect();
        assert_eq!(parsed, vec![e.clone(), e]);
        let _ = fs::remove_dir_all(dir);
    }

    fn lease(target: &str, worker: usize, attempt: u32) -> LeaseEntry {
        LeaseEntry {
            target: target.to_owned(),
            fingerprint: fingerprint(target, 30),
            worker,
            attempt,
            deadline_s: 612.5,
        }
    }

    #[test]
    fn lease_entries_round_trip_and_stay_invisible_to_v1() {
        let l = lease("fig9a", 2, 1);
        assert_eq!(
            l.to_jsonl(),
            format!(
                "{{\"rec\":\"lease\",\"target\":\"fig9a\",\"fingerprint\":{},\
                 \"worker\":2,\"attempt\":1,\"deadline_s\":612.5}}",
                l.fingerprint
            )
        );
        assert_eq!(LeaseEntry::parse_line(&l.to_jsonl()), Some(l.clone()));
        // A v1-style strict parser (ManifestEntry) rejects lease lines
        // whole instead of misreading them.
        assert_eq!(ManifestEntry::parse_line(&l.to_jsonl()), None);
        // And the lease parser rejects terminal entries.
        let e = entry("fig9a", EntryStatus::Done);
        assert_eq!(LeaseEntry::parse_line(&e.to_jsonl()), None);
    }

    #[test]
    fn journal_tracks_orphaned_leases() {
        let dir = scratch_dir("leases");
        let mut j = Journal::open(&dir).unwrap();
        // fig9a: leased then finished. fig9b: leased twice (retry),
        // never finished — one orphan, deduped by fingerprint.
        j.record_lease(lease("fig9a", 0, 1)).unwrap();
        j.record(entry("fig9a", EntryStatus::Done)).unwrap();
        j.record_lease(lease("fig9b", 1, 1)).unwrap();
        j.record_lease(lease("fig9b", 0, 2)).unwrap();

        let j2 = Journal::open(&dir).unwrap();
        assert_eq!(j2.entries().len(), 1);
        assert_eq!(j2.leases().len(), 3);
        let orphans = j2.orphaned_leases();
        assert_eq!(orphans.len(), 1);
        assert_eq!(orphans[0].target, "fig9b");
        // Completion logic is untouched by lease lines.
        assert!(j2.completed("fig9a", fingerprint("fig9a", 30)));
        assert!(!j2.completed("fig9b", fingerprint("fig9b", 30)));
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn fingerprint_with_separates_fields() {
        assert_eq!(
            fingerprint("fig9a", 30),
            fingerprint_with(&[b"fig9a", &30u64.to_le_bytes()])
        );
        assert_ne!(
            fingerprint_with(&[b"ab", b"c"]),
            fingerprint_with(&[b"a", b"bc"])
        );
        assert_ne!(fingerprint_with(&[b"a"]), fingerprint_with(&[b"a", b""]));
    }

    #[test]
    #[cfg(unix)]
    fn kill0_probe_distinguishes_live_from_dead() {
        // Our own PID is provably alive; a PID far above any real
        // pid_max is provably dead. This exercises the portable
        // non-/proc fallback path directly, on every Unix.
        assert!(pid_alive_kill0(std::process::id()));
        assert!(pid_alive_kill0(1), "init/launchd is always alive");
        assert!(!pid_alive_kill0(999_999_999));
    }

    #[test]
    fn stale_lock_steal_works_through_both_probe_paths() {
        // The lock-stealing decision must agree between the /proc probe
        // (Linux) and the kill -0 fallback: whatever platform this test
        // runs on, a dead owner's lock is stolen and a live owner's is
        // honored. This is the portable stale-steal regression test.
        let dir = scratch_dir("lock_probe");
        fs::write(dir.join(LOCK_FILE), "999999999\n").unwrap();
        let lock = DirLock::acquire(&dir).expect("dead owner must be stolen");
        drop(lock);
        fs::write(dir.join(LOCK_FILE), format!("{}\n", std::process::id())).unwrap();
        // Our own pid in the file is treated as a leftover from a
        // previous run of this process and reclaimed (documented
        // behavior), so probe liveness with PID 1 instead.
        fs::write(dir.join(LOCK_FILE), "1\n").unwrap();
        match DirLock::acquire(&dir) {
            Err(LockError::Busy { pid: Some(1) }) => {}
            other => panic!("live owner must exclude: {other:?}"),
        }
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn dir_lock_excludes_live_owner_and_steals_stale() {
        let dir = scratch_dir("lock");
        let lock = DirLock::acquire(&dir).expect("first acquire");
        // Same-process second acquire: the recorded owner (us) is
        // alive, but pid == ours means a leftover from this process —
        // realistic only across runs, so simulate a *foreign* live
        // owner with PID 1 (init, always alive on Linux).
        drop(lock);
        fs::write(dir.join(LOCK_FILE), "1\n").unwrap();
        match DirLock::acquire(&dir) {
            Err(LockError::Busy { pid: Some(1) }) => {}
            other => panic!("expected Busy{{pid:1}}, got {other:?}"),
        }
        // A dead owner is stolen.
        fs::write(dir.join(LOCK_FILE), "999999999\n").unwrap();
        let lock = DirLock::acquire(&dir).expect("steal stale lock");
        assert!(dir.join(LOCK_FILE).exists());
        drop(lock);
        assert!(!dir.join(LOCK_FILE).exists(), "drop releases the lock");
        let _ = fs::remove_dir_all(dir);
    }
}

//! Perf-regression harness: timed end-to-end sweeps over node counts,
//! rendered as a stable-schema JSON report (`BENCH_*.json`) so future
//! PRs have a recorded trajectory to compare against.
//!
//! The report is hand-formatted (like the trace codec and the
//! degradation report) so key order is stable and the file can be both
//! diffed between commits and scanned without a JSON parser — which is
//! exactly what [`baseline_wall_min`] does to compute speedups against
//! an embedded baseline report.
//!
//! Schema `alert-bench-perf/1`:
//!
//! ```json
//! {
//!   "schema": "alert-bench-perf/1",
//!   "protocol": "ALERT",
//!   "duration_s": 60,
//!   "pairs": 10,
//!   "build": "default",
//!   "points": [
//!     {"nodes":100,"runs":3,"wall_s_mean":0.51,"wall_s_min":0.49,
//!      "events_dispatched":80211,"events_per_sec":163696.1,
//!      "fel_high_water":412}
//!   ],
//!   "scaled_points": [
//!     {"nodes":10000,"runs":1,...same keys...}
//!   ],
//!   "tracing_overhead":{"nodes":100,"runs":3,"wall_s_disabled":0.49,
//!     "wall_s_jsonl":0.58,"wall_s_timeseries":0.50,
//!     "jsonl_ratio":1.184,"timeseries_ratio":1.020},
//!   "speedup_vs_baseline":{"100":1.61},
//!   "baseline":{...previous report, embedded verbatim...}
//! }
//! ```
//!
//! `tracing_overhead` (optional) records the cost of the observability
//! layers on one node count: the same seeds re-run with tracing at its
//! disabled default, streaming JSONL to an in-memory sink, and with
//! registry sampling on. The ratios are `wall_s_<mode> /
//! wall_s_disabled` — the disabled path is the guard: it must stay
//! indistinguishable from a build without tracing at all.
//!
//! `wall_s_min` (best of `runs`) is the comparison metric: the minimum
//! is the least noisy estimator of the true cost on a shared machine,
//! while `wall_s_mean` records spread. `events_dispatched` and
//! `fel_high_water` come from the engine's always-on deterministic
//! counters, so they double as a cheap cross-build sanity check: two
//! builds of the same code must agree on them exactly.
//!
//! `scaled_points` (optional) is the large-population tier: the same
//! measurements, but each node count rescales the field to hold node
//! density at the base scenario's value
//! ([`ScenarioConfig::with_nodes_scaled_field`]). Growing the population
//! on the paper's fixed 1 km² field mostly measures neighbor-list
//! churn (at 100k nodes every node hears ~20k others); the
//! density-constant tier instead measures what a big deployment costs —
//! event-loop, calendar-queue and spatial-grid scaling. The
//! `speedup_vs_baseline` map only covers `points`, so old baselines
//! without a scaled tier stay comparable.

use crate::runner::{progress_enabled, run_instrumented, ProtocolChoice, RunFailure, RunOptions};
use alert_sim::{JsonlSink, ScenarioConfig, SharedBuf};
use std::time::Instant;

/// One timed sweep point of the perf harness.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PerfPoint {
    /// Node count of this sweep point.
    pub nodes: usize,
    /// Timed runs taken (after one untimed warm-up).
    pub runs: usize,
    /// Mean wall-clock seconds per run.
    pub wall_s_mean: f64,
    /// Best (minimum) wall-clock seconds over the runs.
    pub wall_s_min: f64,
    /// Events dispatched per run — deterministic, identical across runs.
    pub events_dispatched: u64,
    /// `events_dispatched / wall_s_min`.
    pub events_per_sec: f64,
    /// Peak future-event-list length — deterministic.
    pub fel_high_water: u64,
}

/// Runs the timed sweep: for each node count, one untimed warm-up run
/// plus `runs` timed runs (sequentially — parallel runs would contend
/// and corrupt the wall-clock numbers). Seeds follow the
/// [`crate::sweep_point`] convention so the workload matches the
/// Monte-Carlo sweeps being optimised.
pub fn perf_sweep(
    protocol: ProtocolChoice,
    base: &ScenarioConfig,
    nodes: &[usize],
    runs: usize,
) -> Result<Vec<PerfPoint>, RunFailure> {
    sweep_with(protocol, nodes, runs, |n| base.clone().with_nodes(n))
}

/// The density-constant large-population sweep: like [`perf_sweep`],
/// but every node count also rescales the field via
/// [`ScenarioConfig::with_nodes_scaled_field`], so a 100k-node point
/// keeps the base scenario's nodes-per-m² instead of packing the
/// population onto the paper's fixed 1 km² field.
pub fn perf_sweep_scaled(
    protocol: ProtocolChoice,
    base: &ScenarioConfig,
    nodes: &[usize],
    runs: usize,
) -> Result<Vec<PerfPoint>, RunFailure> {
    sweep_with(protocol, nodes, runs, |n| {
        base.clone().with_nodes_scaled_field(n)
    })
}

fn sweep_with(
    protocol: ProtocolChoice,
    nodes: &[usize],
    runs: usize,
    mk_cfg: impl Fn(usize) -> ScenarioConfig,
) -> Result<Vec<PerfPoint>, RunFailure> {
    let runs = runs.max(1);
    let mut points = Vec::with_capacity(nodes.len());
    for &n in nodes {
        let cfg = mk_cfg(n);
        cfg.validate()?;
        run_instrumented(protocol, &cfg, 0xA1E7, RunOptions::default())?;
        let mut walls = Vec::with_capacity(runs);
        let mut events = 0u64;
        let mut fel = 0u64;
        for i in 0..runs as u64 {
            let seed = 0xA1E7 + i * 7919;
            let start = Instant::now();
            let out = run_instrumented(protocol, &cfg, seed, RunOptions::default())?;
            walls.push(start.elapsed().as_secs_f64());
            events = events.max(out.profile.events_dispatched);
            fel = fel.max(out.profile.fel_high_water);
        }
        let wall_s_mean = walls.iter().sum::<f64>() / walls.len() as f64;
        let wall_s_min = walls.iter().copied().fold(f64::INFINITY, f64::min);
        let point = PerfPoint {
            nodes: n,
            runs,
            wall_s_mean,
            wall_s_min,
            events_dispatched: events,
            events_per_sec: events as f64 / wall_s_min.max(1e-9),
            fel_high_water: fel,
        };
        if progress_enabled() {
            eprintln!(
                "[progress] bench {} n={n} runs={runs} wall_min={:.4}s ev/s={:.0}",
                protocol.name(),
                point.wall_s_min,
                point.events_per_sec,
            );
        }
        points.push(point);
    }
    Ok(points)
}

/// Wall-clock comparison of the observability paths on one node count:
/// the same seeds run with tracing at its zero-cost disabled default,
/// streaming JSONL to an in-memory sink, and with registry sampling
/// (`metrics_every`) enabled — the `--bench-json` tracing-overhead
/// datum. Minimum over `runs` for each mode, like [`PerfPoint`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TracingOverhead {
    /// Node count the comparison ran at.
    pub nodes: usize,
    /// Timed runs per mode (after one untimed warm-up).
    pub runs: usize,
    /// Best wall-clock seconds with no sink and no sampling.
    pub wall_s_disabled: f64,
    /// Best wall-clock seconds streaming JSONL to an in-memory buffer.
    pub wall_s_jsonl: f64,
    /// Best wall-clock seconds with 5 s registry sampling (no sink).
    pub wall_s_timeseries: f64,
}

/// Measures [`TracingOverhead`] for `protocol` at `nodes`. The three
/// modes are interleaved within each iteration so machine drift hits
/// them equally; the JSONL sink writes to memory so disk noise does not
/// masquerade as tracing cost.
pub fn tracing_overhead(
    protocol: ProtocolChoice,
    base: &ScenarioConfig,
    nodes: usize,
    runs: usize,
) -> Result<TracingOverhead, RunFailure> {
    let runs = runs.max(1);
    let cfg = base.clone().with_nodes(nodes);
    cfg.validate()?;
    run_instrumented(protocol, &cfg, 0xA1E7, RunOptions::default())?;
    let (mut disabled, mut jsonl, mut timeseries) = (f64::INFINITY, f64::INFINITY, f64::INFINITY);
    for i in 0..runs as u64 {
        let seed = 0xA1E7 + i * 7919;
        let start = Instant::now();
        run_instrumented(protocol, &cfg, seed, RunOptions::default())?;
        disabled = disabled.min(start.elapsed().as_secs_f64());

        let buf = SharedBuf::new();
        let opts = RunOptions::with_trace(Box::new(JsonlSink::new(buf)));
        let start = Instant::now();
        run_instrumented(protocol, &cfg, seed, opts)?;
        jsonl = jsonl.min(start.elapsed().as_secs_f64());

        let opts = RunOptions {
            metrics_every: Some(5.0),
            ..RunOptions::default()
        };
        let start = Instant::now();
        run_instrumented(protocol, &cfg, seed, opts)?;
        timeseries = timeseries.min(start.elapsed().as_secs_f64());
    }
    let overhead = TracingOverhead {
        nodes,
        runs,
        wall_s_disabled: disabled,
        wall_s_jsonl: jsonl,
        wall_s_timeseries: timeseries,
    };
    if progress_enabled() {
        eprintln!(
            "[progress] tracing overhead {} n={nodes} disabled={disabled:.4}s jsonl={jsonl:.4}s timeseries={timeseries:.4}s",
            protocol.name(),
        );
    }
    Ok(overhead)
}

/// Renders the `alert-bench-perf/1` report. When `overhead` is present
/// it is emitted as the additive `"tracing_overhead"` object (with
/// derived `jsonl_ratio`/`timeseries_ratio`). When `baseline` holds a
/// previous report (same schema), it is embedded verbatim under
/// `"baseline"` and a `"speedup_vs_baseline"` map records
/// `baseline wall_s_min / current wall_s_min` for every node count
/// present in both. A non-empty `scaled` slice (from
/// [`perf_sweep_scaled`]) is emitted as the additive `"scaled_points"`
/// array right after `"points"`; it never participates in the speedup
/// map, so reports remain comparable to baselines that predate the
/// scaled tier.
pub fn render_perf_json(
    protocol: &str,
    scenario: &ScenarioConfig,
    build: &str,
    points: &[PerfPoint],
    scaled: &[PerfPoint],
    overhead: Option<&TracingOverhead>,
    baseline: Option<&str>,
) -> String {
    fn push_points(s: &mut String, points: &[PerfPoint]) {
        for (i, p) in points.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "{{\"nodes\":{},\"runs\":{},\"wall_s_mean\":{:.6},\"wall_s_min\":{:.6},\
                 \"events_dispatched\":{},\"events_per_sec\":{:.1},\"fel_high_water\":{}}}",
                p.nodes,
                p.runs,
                p.wall_s_mean,
                p.wall_s_min,
                p.events_dispatched,
                p.events_per_sec,
                p.fel_high_water
            ));
        }
    }

    let mut s = String::from("{");
    s.push_str("\"schema\":\"alert-bench-perf/1\",");
    s.push_str(&format!("\"protocol\":\"{protocol}\","));
    s.push_str(&format!("\"duration_s\":{},", scenario.duration_s));
    s.push_str(&format!("\"pairs\":{},", scenario.traffic.pairs));
    s.push_str(&format!("\"build\":\"{build}\","));
    s.push_str("\"points\":[");
    push_points(&mut s, points);
    s.push(']');
    if !scaled.is_empty() {
        s.push_str(",\"scaled_points\":[");
        push_points(&mut s, scaled);
        s.push(']');
    }
    if let Some(o) = overhead {
        let floor = o.wall_s_disabled.max(1e-9);
        s.push_str(&format!(
            ",\"tracing_overhead\":{{\"nodes\":{},\"runs\":{},\"wall_s_disabled\":{:.6},\
             \"wall_s_jsonl\":{:.6},\"wall_s_timeseries\":{:.6},\
             \"jsonl_ratio\":{:.3},\"timeseries_ratio\":{:.3}}}",
            o.nodes,
            o.runs,
            o.wall_s_disabled,
            o.wall_s_jsonl,
            o.wall_s_timeseries,
            o.wall_s_jsonl / floor,
            o.wall_s_timeseries / floor,
        ));
    }
    if let Some(base) = baseline {
        let speedups: Vec<String> = points
            .iter()
            .filter_map(|p| {
                baseline_wall_min(base, p.nodes)
                    .map(|old| format!("\"{}\":{:.3}", p.nodes, old / p.wall_s_min.max(1e-9)))
            })
            .collect();
        s.push_str(&format!(
            ",\"speedup_vs_baseline\":{{{}}}",
            speedups.join(",")
        ));
        s.push_str(&format!(",\"baseline\":{}", base.trim()));
    }
    s.push('}');
    s
}

/// Extracts `wall_s_min` for the given node count from an
/// `alert-bench-perf/1` report by scanning the stable schema — no JSON
/// parser needed (and none is assumed to exist at runtime). Because
/// `"points"` precedes `"baseline"` in the schema, the first match is
/// always the report's own point, never a nested baseline's.
pub fn baseline_wall_min(report: &str, nodes: usize) -> Option<f64> {
    let key = format!("\"nodes\":{nodes},");
    let at = report.find(&key)?;
    let rest = &report[at..];
    let end = rest.find('}')?;
    let obj = &rest[..end];
    let v = obj.split("\"wall_s_min\":").nth(1)?;
    let num: String = v
        .chars()
        .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-' || *c == 'e' || *c == '+')
        .collect();
    num.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fake_points() -> Vec<PerfPoint> {
        vec![
            PerfPoint {
                nodes: 100,
                runs: 3,
                wall_s_mean: 0.5,
                wall_s_min: 0.4,
                events_dispatched: 1000,
                events_per_sec: 2500.0,
                fel_high_water: 42,
            },
            PerfPoint {
                nodes: 300,
                runs: 3,
                wall_s_mean: 3.0,
                wall_s_min: 2.0,
                events_dispatched: 9000,
                events_per_sec: 4500.0,
                fel_high_water: 99,
            },
        ]
    }

    #[test]
    fn report_roundtrips_through_the_scanner() {
        let cfg = ScenarioConfig::default();
        let json = render_perf_json("ALERT", &cfg, "test", &fake_points(), &[], None, None);
        assert!(json.starts_with("{\"schema\":\"alert-bench-perf/1\""));
        assert_eq!(baseline_wall_min(&json, 100), Some(0.4));
        assert_eq!(baseline_wall_min(&json, 300), Some(2.0));
        assert_eq!(baseline_wall_min(&json, 200), None);
    }

    #[test]
    fn node_count_prefixes_do_not_collide() {
        // "nodes":30 must not match inside "nodes":300.
        let cfg = ScenarioConfig::default();
        let json = render_perf_json("ALERT", &cfg, "test", &fake_points(), &[], None, None);
        assert_eq!(baseline_wall_min(&json, 30), None);
        assert_eq!(baseline_wall_min(&json, 10), None);
    }

    #[test]
    fn speedup_is_computed_against_the_embedded_baseline() {
        let cfg = ScenarioConfig::default();
        let old = render_perf_json("ALERT", &cfg, "test", &fake_points(), &[], None, None);
        let mut faster = fake_points();
        for p in &mut faster {
            p.wall_s_min /= 2.0;
            p.wall_s_mean /= 2.0;
        }
        let new = render_perf_json("ALERT", &cfg, "test", &faster, &[], None, Some(&old));
        assert!(new.contains("\"speedup_vs_baseline\":{\"100\":2.000,\"300\":2.000}"));
        assert!(new.contains("\"baseline\":{\"schema\":\"alert-bench-perf/1\""));
        // Scanning the new report still finds the *new* points, not the
        // embedded baseline's.
        assert_eq!(baseline_wall_min(&new, 100), Some(0.2));
    }

    #[test]
    fn scaled_points_render_after_points_and_stay_out_of_the_speedup_map() {
        let cfg = ScenarioConfig::default();
        let scaled = vec![PerfPoint {
            nodes: 10_000,
            runs: 1,
            wall_s_mean: 8.0,
            wall_s_min: 7.5,
            events_dispatched: 5_000_000,
            events_per_sec: 650_000.0,
            fel_high_water: 12_345,
        }];
        let old = render_perf_json("ALERT", &cfg, "test", &fake_points(), &[], None, None);
        let json = render_perf_json(
            "ALERT",
            &cfg,
            "test",
            &fake_points(),
            &scaled,
            None,
            Some(&old),
        );
        let points_at = json.find("\"points\":[").unwrap();
        let scaled_at = json.find("\"scaled_points\":[").unwrap();
        assert!(scaled_at > points_at);
        assert!(json.contains(
            "\"scaled_points\":[{\"nodes\":10000,\"runs\":1,\"wall_s_mean\":8.000000,\
             \"wall_s_min\":7.500000,\"events_dispatched\":5000000,\
             \"events_per_sec\":650000.0,\"fel_high_water\":12345}]"
        ));
        // The speedup map is keyed only by the standard tier.
        assert!(json.contains("\"speedup_vs_baseline\":{\"100\":1.000,\"300\":1.000}"));
        // The scanner can still pull scaled points out of a report (the
        // trailing comma in the key keeps "nodes":100 from matching
        // inside "nodes":10000).
        assert_eq!(baseline_wall_min(&json, 10_000), Some(7.5));
        assert_eq!(baseline_wall_min(&json, 100), Some(0.4));
    }

    #[test]
    fn empty_scaled_tier_is_omitted() {
        let cfg = ScenarioConfig::default();
        let json = render_perf_json("ALERT", &cfg, "test", &fake_points(), &[], None, None);
        assert!(!json.contains("scaled_points"));
    }

    #[test]
    fn perf_sweep_scaled_holds_density_constant() {
        let mut cfg = ScenarioConfig::default().with_duration(5.0);
        cfg.traffic.pairs = 2;
        let pts = perf_sweep_scaled(ProtocolChoice::Gpsr, &cfg, &[cfg.nodes * 4], 1).unwrap();
        assert_eq!(pts.len(), 1);
        let p = &pts[0];
        assert_eq!(p.nodes, cfg.nodes * 4);
        assert!(p.events_dispatched > 0);
        // Quadrupling the population at constant density must not
        // quadruple per-node work: total events grow roughly linearly,
        // staying far below the dense-field quadratic blow-up.
        let base = perf_sweep(ProtocolChoice::Gpsr, &cfg, &[cfg.nodes], 1).unwrap();
        assert!(p.events_dispatched < base[0].events_dispatched * 8);
    }

    #[test]
    fn tracing_overhead_renders_with_ratios() {
        let cfg = ScenarioConfig::default();
        let o = TracingOverhead {
            nodes: 100,
            runs: 3,
            wall_s_disabled: 0.4,
            wall_s_jsonl: 0.5,
            wall_s_timeseries: 0.44,
        };
        let json = render_perf_json("ALERT", &cfg, "test", &fake_points(), &[], Some(&o), None);
        assert!(json.contains(
            "\"tracing_overhead\":{\"nodes\":100,\"runs\":3,\"wall_s_disabled\":0.400000,\
             \"wall_s_jsonl\":0.500000,\"wall_s_timeseries\":0.440000,\
             \"jsonl_ratio\":1.250,\"timeseries_ratio\":1.100}"
        ));
        // The overhead object must not confuse the baseline scanner.
        assert_eq!(baseline_wall_min(&json, 100), Some(0.4));
    }

    #[test]
    fn tracing_overhead_measures_all_three_modes() {
        let mut cfg = ScenarioConfig::default().with_duration(5.0);
        cfg.traffic.pairs = 2;
        let o = tracing_overhead(ProtocolChoice::Gpsr, &cfg, 30, 1).unwrap();
        assert_eq!(o.nodes, 30);
        assert_eq!(o.runs, 1);
        assert!(o.wall_s_disabled > 0.0);
        assert!(o.wall_s_jsonl > 0.0);
        assert!(o.wall_s_timeseries > 0.0);
    }

    #[test]
    fn perf_sweep_fills_deterministic_fields() {
        let mut cfg = ScenarioConfig::default().with_duration(5.0);
        cfg.traffic.pairs = 2;
        let pts = perf_sweep(ProtocolChoice::Gpsr, &cfg, &[30], 2).unwrap();
        assert_eq!(pts.len(), 1);
        let p = &pts[0];
        assert_eq!(p.nodes, 30);
        assert!(p.events_dispatched > 0);
        assert!(p.fel_high_water > 0);
        assert!(p.wall_s_min > 0.0 && p.wall_s_min <= p.wall_s_mean + 1e-12);
        assert!(p.events_per_sec > 0.0);
    }

    #[test]
    fn perf_sweep_rejects_invalid_scenarios() {
        let cfg = ScenarioConfig::default();
        let err = perf_sweep(ProtocolChoice::Gpsr, &cfg, &[0], 1).unwrap_err();
        assert_eq!(err, RunFailure::Scenario(alert_sim::ScenarioError::NoNodes));
    }
}

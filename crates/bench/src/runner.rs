//! Monte-Carlo sweep infrastructure: run `(protocol, scenario)` across
//! seeds in parallel (Rayon) and reduce per-run metrics into
//! mean ± 95% CI — the paper's "average of results of 30 runs" with
//! confidence intervals (Section 5.2).

use alert_core::{Alert, AlertConfig};
use alert_protocols::{Alarm, Anodr, Ao2p, Gpsr, Mapcp, Mask, Prism, Zap};
use alert_sim::{
    Metrics, MetricsTimeseries, NodeId, ProtocolNode, RegistrySnapshot, RingBufferHandle,
    RingBufferSink, RunAbort, RunProfile, ScenarioConfig, ScenarioError, TeeSink, TraceSink, World,
};
use rayon::prelude::*;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

/// Global toggle for `repro --progress`-style per-data-point lines on
/// stderr. Off by default so sweep output stays machine-parsable.
static PROGRESS: AtomicBool = AtomicBool::new(false);

/// Enables or disables per-data-point progress lines on stderr.
pub fn set_progress(enabled: bool) {
    PROGRESS.store(enabled, Ordering::Relaxed);
}

/// Whether progress lines are currently enabled.
pub fn progress_enabled() -> bool {
    PROGRESS.load(Ordering::Relaxed)
}

/// Process-wide count of non-finite samples discarded by
/// [`Stat::from_samples`] — the sweep-level `sweep.nan_samples` counter.
/// A nonzero value after a figure run means some metric fed NaN into a
/// reduction (e.g. a ratio over zero packets) and silently shrank `n`.
static SWEEP_NAN_SAMPLES: AtomicU64 = AtomicU64::new(0);

/// Total non-finite samples discarded across all [`Stat::from_samples`]
/// calls in this process (`sweep.nan_samples`).
pub fn nan_samples_total() -> u64 {
    SWEEP_NAN_SAMPLES.load(Ordering::Relaxed)
}

/// Why a single sweep run produced no metrics.
///
/// Every failure class a long campaign meets in practice, as one value:
/// a scenario that fails validation, a run aborted by its
/// [`alert_sim::RunBudget`] guardrails, or a panic unwound out of the
/// simulator (isolated by [`guarded_run_once`] so one poisoned point
/// cannot sink hours of Monte-Carlo work).
#[derive(Debug, Clone, PartialEq)]
pub enum RunFailure {
    /// The scenario failed [`ScenarioConfig::validate`].
    Scenario(ScenarioError),
    /// A run guardrail tripped; see [`RunAbort`].
    Aborted(RunAbort),
    /// The run panicked; the payload message is preserved.
    Panicked(String),
}

impl std::fmt::Display for RunFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunFailure::Scenario(e) => write!(f, "invalid scenario: {e}"),
            RunFailure::Aborted(a) => write!(f, "run aborted: {a}"),
            RunFailure::Panicked(msg) => write!(f, "panicked: {msg}"),
        }
    }
}

impl std::error::Error for RunFailure {}

impl From<ScenarioError> for RunFailure {
    fn from(e: ScenarioError) -> Self {
        RunFailure::Scenario(e)
    }
}

impl From<RunAbort> for RunFailure {
    fn from(a: RunAbort) -> Self {
        RunFailure::Aborted(a)
    }
}

/// Renders a `catch_unwind` payload into a printable message.
pub(crate) fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

/// One quarantined sweep run, kept in the process-wide failure ledger
/// for the campaign-level failure report (`repro`'s `failures.jsonl`).
#[derive(Debug, Clone, PartialEq)]
pub struct FailureRecord {
    /// Protocol display name of the failed run.
    pub protocol: String,
    /// Node count of the failed run.
    pub nodes: usize,
    /// Seed of the failed run.
    pub seed: u64,
    /// Human-readable failure description.
    pub error: String,
    /// One-line `simrun` command reproducing the failed point.
    pub replay: String,
}

/// Process-wide ledger of quarantined sweep runs, partitioned by
/// *failure scope* so concurrent pool workers (see [`crate::pool`])
/// never steal each other's records. Scope 0 is the serial default;
/// workers claim a scope with [`set_failure_scope`] (propagated to
/// their private rayon pool threads via a `start_handler`) and drain
/// only their own partition at commit time.
static FAILURES: Mutex<std::collections::BTreeMap<usize, Vec<FailureRecord>>> =
    Mutex::new(std::collections::BTreeMap::new());

/// Total failures quarantined in this process (monotonic; survives
/// [`drain_failures`]).
static FAILURES_TOTAL: AtomicU64 = AtomicU64::new(0);

thread_local! {
    /// Which ledger partition [`quarantine`] on this thread writes to.
    static FAILURE_SCOPE: std::cell::Cell<usize> = const { std::cell::Cell::new(0) };
}

/// Binds this thread (and, via rayon `start_handler`, a worker's
/// private pool threads) to a ledger partition. Scope 0 — the default
/// on every thread — preserves the old process-global behavior for
/// serial runs.
pub fn set_failure_scope(scope: usize) {
    FAILURE_SCOPE.with(|s| s.set(scope));
}

/// The ledger partition this thread currently quarantines into.
pub fn failure_scope() -> usize {
    FAILURE_SCOPE.with(|s| s.get())
}

/// Removes and returns every failure quarantined in the calling
/// thread's scope since the last drain.
pub fn drain_failures() -> Vec<FailureRecord> {
    drain_failures_scoped(failure_scope())
}

/// Removes and returns every failure quarantined in the given scope
/// since the last drain. Pool committers use this to collect a
/// worker's records regardless of which thread commits.
pub fn drain_failures_scoped(scope: usize) -> Vec<FailureRecord> {
    FAILURES
        .lock()
        .expect("failure ledger poisoned")
        .remove(&scope)
        .unwrap_or_default()
}

/// Total sweep runs quarantined in this process.
pub fn failures_total() -> u64 {
    FAILURES_TOTAL.load(Ordering::Relaxed)
}

/// Records a quarantined run: ledger entry plus a one-line stderr report
/// carrying the `simrun` replay command.
pub(crate) fn quarantine(record: FailureRecord) {
    eprintln!(
        "[failed] {} n={} seed={}: {} | replay: {}",
        record.protocol, record.nodes, record.seed, record.error, record.replay
    );
    FAILURES_TOTAL.fetch_add(1, Ordering::Relaxed);
    FAILURES
        .lock()
        .expect("failure ledger poisoned")
        .entry(failure_scope())
        .or_default()
        .push(record);
}

/// Which routing protocol a sweep point runs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ProtocolChoice {
    /// ALERT with the given parameters.
    Alert(AlertConfig),
    /// The GPSR baseline.
    Gpsr,
    /// The ALARM comparison protocol.
    Alarm,
    /// The AO2P comparison protocol.
    Ao2p,
    /// The ZAP destination-cloaking protocol, with its zone-growth factor
    /// (1.0 = countermeasure off).
    Zap {
        /// Per-packet anonymity-zone growth factor.
        growth: f64,
    },
    /// The ANODR topological onion-routing baseline.
    Anodr,
    /// The PRISM reactive geographic baseline.
    Prism,
    /// The MASK anonymous-neighborhood topological baseline.
    Mask,
    /// The MAPCP gossip middleware.
    Mapcp,
    /// Planted-defect protocol that leaks the real source `NodeId` on the
    /// wire ([`crate::planted::LeakyGeo`]). Test-only: exercised by
    /// `simcheck --plant leak` and the hidden `simrun` protocol name
    /// `__leaky-node-id`; never scheduled by `repro` sweeps.
    #[doc(hidden)]
    LeakyNodeId,
}

impl ProtocolChoice {
    /// Display name for table headers.
    pub fn name(&self) -> &'static str {
        match self {
            ProtocolChoice::Alert(_) => "ALERT",
            ProtocolChoice::Gpsr => "GPSR",
            ProtocolChoice::Alarm => "ALARM",
            ProtocolChoice::Ao2p => "AO2P",
            ProtocolChoice::Zap { .. } => "ZAP",
            ProtocolChoice::Anodr => "ANODR",
            ProtocolChoice::Prism => "PRISM",
            ProtocolChoice::Mask => "MASK",
            ProtocolChoice::Mapcp => "MAPCP",
            ProtocolChoice::LeakyNodeId => "__LEAKY-NODE-ID",
        }
    }
}

/// Default ring capacity for [`PostmortemDump`]: enough tail to see the
/// livelock/budget blow-up leading into an abort without holding a whole
/// trace in memory.
pub const POSTMORTEM_RING_CAPACITY: usize = 4096;

/// Post-mortem dump request: keep the last [`PostmortemDump::capacity`]
/// trace events in a ring buffer and, if the run aborts (guardrail trip)
/// or panics, write them as JSONL to [`PostmortemDump::path`].
///
/// The dump is best-effort: an I/O failure while writing it is reported
/// on stderr but never masks the abort or panic it documents.
#[derive(Debug, Clone, PartialEq)]
pub struct PostmortemDump {
    /// Where to write the JSONL tail (convention: `<out>/postmortem.jsonl`).
    pub path: std::path::PathBuf,
    /// How many trailing events to keep (min 1).
    pub capacity: usize,
}

impl PostmortemDump {
    /// A dump request at `path` with the default ring capacity.
    pub fn new(path: impl Into<std::path::PathBuf>) -> PostmortemDump {
        PostmortemDump {
            path: path.into(),
            capacity: POSTMORTEM_RING_CAPACITY,
        }
    }
}

/// Observability knobs for [`run_instrumented`]: where (if anywhere) to
/// stream the structured trace, whether to time the dispatch loop,
/// whether to sample the metrics registry into a timeseries, and whether
/// to keep a post-mortem ring of trailing events.
#[derive(Default)]
pub struct RunOptions {
    /// Trace sink to attach before the run; `None` keeps tracing at its
    /// zero-cost disabled default.
    pub trace: Option<Box<dyn TraceSink>>,
    /// Collect wall-clock dispatch statistics into the [`RunProfile`].
    pub profile: bool,
    /// Sample the counter/histogram registry every this many simulated
    /// seconds into [`RunOutput::timeseries`] (`alert-timeseries/1`).
    pub metrics_every: Option<f64>,
    /// Keep a ring of trailing trace events and dump them on abort/panic.
    pub postmortem: Option<PostmortemDump>,
}

impl RunOptions {
    /// Options with a trace sink attached.
    pub fn with_trace(sink: Box<dyn TraceSink>) -> RunOptions {
        RunOptions {
            trace: Some(sink),
            ..RunOptions::default()
        }
    }
}

/// Everything an instrumented run produces: the simulation metrics plus
/// the engine-level [`RunProfile`] (events dispatched, FEL high-water
/// mark, wall-clock rates — zeros for the timing fields unless
/// [`RunOptions::profile`] was set).
#[derive(Debug, Clone)]
pub struct RunOutput {
    /// Per-run simulation metrics.
    pub metrics: Metrics,
    /// Engine profile for the same run.
    pub profile: RunProfile,
    /// Counter/histogram registry at end of run (typed observability:
    /// `node.downs`, `link.retries`, ...).
    pub registry: RegistrySnapshot,
    /// Registry samples taken every [`RunOptions::metrics_every`]
    /// simulated seconds; `None` unless sampling was requested.
    pub timeseries: Option<MetricsTimeseries>,
}

/// Writes the post-mortem ring tail to its path. Best-effort: failures
/// go to stderr so they never mask the abort/panic being documented.
fn dump_postmortem(pm: &PostmortemDump, ring: Option<&RingBufferHandle>) {
    let Some(handle) = ring else { return };
    if let Err(e) = std::fs::write(&pm.path, handle.to_jsonl()) {
        eprintln!("postmortem: failed to write {}: {e}", pm.path.display());
    }
}

/// Builds the world for one protocol choice, applies the observability
/// options, and runs to completion. Single choke point for all nine
/// protocol arms so instrumentation cannot drift between them.
///
/// An active insider plan wraps every node in the adversary crate's
/// [`Insider`](alert_adversary::Insider), with the compromised set
/// chosen purely from `(cfg.insiders, nodes, seed)` — the identical
/// wrapping simcheck's driver applies, so a simcheck replay through
/// `simrun` reproduces the same run. The bench side extracts no packet
/// ids (scoring lives in simcheck); insider behavior never depends on
/// the extractor, so the runs agree event for event.
fn drive<P, F>(
    cfg: &ScenarioConfig,
    seed: u64,
    opts: RunOptions,
    factory: F,
) -> Result<RunOutput, RunFailure>
where
    P: ProtocolNode,
    F: FnMut(NodeId, &ScenarioConfig) -> P,
{
    if cfg.insiders.is_active() {
        let plan = cfg.insiders;
        let chosen = plan.choose(cfg.nodes, seed);
        let log = alert_adversary::tamper_log();
        let mut factory = factory;
        return drive_world(cfg, seed, opts, move |id: NodeId, c: &ScenarioConfig| {
            alert_adversary::Insider::new(
                factory(id, c),
                id.0 as u64,
                plan.mode,
                chosen[id.0],
                log.clone(),
                |_: &P::Msg| None::<u64>,
            )
        });
    }
    drive_world(cfg, seed, opts, factory)
}

/// The insider-agnostic inner body of [`drive`].
fn drive_world<P, F>(
    cfg: &ScenarioConfig,
    seed: u64,
    opts: RunOptions,
    factory: F,
) -> Result<RunOutput, RunFailure>
where
    P: ProtocolNode,
    F: FnMut(NodeId, &ScenarioConfig) -> P,
{
    let RunOptions {
        trace,
        profile,
        metrics_every,
        postmortem,
    } = opts;
    let mut w = World::try_new(cfg.clone(), seed, factory)?;
    // With a post-mortem request the ring sink is installed even when no
    // user sink was given — the dump must work for otherwise-untraced
    // runs. A user sink tees with the ring so neither knows the other.
    let mut ring: Option<RingBufferHandle> = None;
    match (trace, postmortem.as_ref()) {
        (Some(sink), None) => {
            w.set_trace_sink(sink);
        }
        (Some(sink), Some(pm)) => {
            let rb = RingBufferSink::new(pm.capacity);
            ring = Some(rb.handle());
            w.set_trace_sink(Box::new(TeeSink::new(sink, Box::new(rb))));
        }
        (None, Some(pm)) => {
            let rb = RingBufferSink::new(pm.capacity);
            ring = Some(rb.handle());
            w.set_trace_sink(Box::new(rb));
        }
        (None, None) => {}
    }
    if profile {
        w.enable_profiling();
    }
    if let Some(every) = metrics_every {
        w.enable_metrics_timeseries(every);
    }
    let ran = if postmortem.is_some() {
        // Catch a panic only long enough to flush the ring tail, then
        // let it keep unwinding: the caller's panic policy is unchanged.
        match catch_unwind(AssertUnwindSafe(|| w.try_run())) {
            Ok(r) => r,
            Err(payload) => {
                dump_postmortem(postmortem.as_ref().expect("postmortem set"), ring.as_ref());
                std::panic::resume_unwind(payload);
            }
        }
    } else {
        w.try_run()
    };
    // Detach (and thereby flush) the sink before reading results out —
    // an aborted run's trace still ends with its `run_aborted` record.
    drop(w.take_trace_sink());
    if ran.is_err() {
        if let Some(pm) = postmortem.as_ref() {
            dump_postmortem(pm, ring.as_ref());
        }
    }
    ran?;
    let profile = w.run_profile();
    Ok(RunOutput {
        metrics: w.metrics().clone(),
        profile,
        registry: w.registry_snapshot(),
        timeseries: w.take_metrics_timeseries(),
    })
}

/// Runs one simulation to completion with the given observability
/// options. Errors on an invalid scenario or a guardrail abort instead
/// of panicking.
pub fn run_instrumented(
    protocol: ProtocolChoice,
    cfg: &ScenarioConfig,
    seed: u64,
    opts: RunOptions,
) -> Result<RunOutput, RunFailure> {
    match protocol {
        ProtocolChoice::Alert(a) => drive(cfg, seed, opts, move |_, _| Alert::new(a)),
        ProtocolChoice::Gpsr => drive(cfg, seed, opts, |_, _| Gpsr::default()),
        ProtocolChoice::Alarm => drive(cfg, seed, opts, |_, _| Alarm::default()),
        ProtocolChoice::Ao2p => drive(cfg, seed, opts, |_, _| Ao2p::default()),
        ProtocolChoice::Zap { growth } => {
            drive(cfg, seed, opts, move |_, _| Zap::with_growth(growth))
        }
        ProtocolChoice::Anodr => drive(cfg, seed, opts, |_, _| Anodr::default()),
        ProtocolChoice::Prism => drive(cfg, seed, opts, |_, _| Prism::default()),
        ProtocolChoice::Mask => drive(cfg, seed, opts, |_, _| Mask::default()),
        ProtocolChoice::Mapcp => drive(cfg, seed, opts, |_, _| Mapcp::default()),
        ProtocolChoice::LeakyNodeId => {
            drive(cfg, seed, opts, |id, _| crate::planted::LeakyGeo::new(id))
        }
    }
}

/// Runs one plain (untraced, unprofiled) simulation, reporting scenario
/// problems and guardrail aborts as a typed error.
pub fn try_run_once(
    protocol: ProtocolChoice,
    cfg: &ScenarioConfig,
    seed: u64,
) -> Result<Metrics, RunFailure> {
    run_instrumented(protocol, cfg, seed, RunOptions::default()).map(|out| out.metrics)
}

/// One sweep run's identity and result — what panic isolation reduces a
/// run to. Carries enough context ([`RunOutcome::replay_command`]) to
/// reproduce the exact failing point outside the sweep.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// Protocol display name.
    pub protocol: &'static str,
    /// Node count of the scenario.
    pub nodes: usize,
    /// S–D pair count of the scenario.
    pub pairs: usize,
    /// Simulated duration of the scenario, seconds.
    pub duration_s: f64,
    /// The run's seed.
    pub seed: u64,
    /// Metrics, or why there are none.
    pub result: Result<Metrics, RunFailure>,
}

impl RunOutcome {
    /// A one-line `simrun` command replaying this point (protocol,
    /// geometry, and seed; protocol-specific tuning like a custom
    /// `AlertConfig` or ZAP growth factor is not encodable as flags).
    pub fn replay_command(&self) -> String {
        format!(
            "simrun --protocol {} --nodes {} --pairs {} --duration {} --seed {}",
            self.protocol.to_lowercase(),
            self.nodes,
            self.pairs,
            self.duration_s,
            self.seed
        )
    }

    /// Converts a failed outcome into its ledger record.
    fn failure_record(&self, error: String) -> FailureRecord {
        FailureRecord {
            protocol: self.protocol.to_owned(),
            nodes: self.nodes,
            seed: self.seed,
            error,
            replay: self.replay_command(),
        }
    }
}

/// Runs one simulation with full panic isolation: validation errors,
/// guardrail aborts, and panics all come back as a structured
/// [`RunOutcome`] instead of unwinding into the sweep.
pub fn guarded_run_once(protocol: ProtocolChoice, cfg: &ScenarioConfig, seed: u64) -> RunOutcome {
    let result = match catch_unwind(AssertUnwindSafe(|| try_run_once(protocol, cfg, seed))) {
        Ok(r) => r,
        Err(payload) => Err(RunFailure::Panicked(panic_message(payload))),
    };
    RunOutcome {
        protocol: protocol.name(),
        nodes: cfg.nodes,
        pairs: cfg.traffic.pairs,
        duration_s: cfg.duration_s,
        seed,
        result,
    }
}

/// A sample mean with its 95% confidence half-width.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Stat {
    /// Sample mean.
    pub mean: f64,
    /// 95% confidence half-width (`t_{0.975, n-1} s / sqrt(n)`).
    pub ci95: f64,
    /// Number of (finite) samples the statistics were computed from.
    pub n: usize,
    /// Non-finite samples dropped before the reduction.
    pub discarded: usize,
}

/// Two-sided 95% Student-t critical values for 1..=30 degrees of
/// freedom. Sweeps run 3–30 seeds, squarely in the regime where the
/// normal z = 1.96 understates the half-width (t_1 = 12.7, t_4 = 2.78).
const T95: [f64; 30] = [
    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, 2.201, 2.179, 2.160,
    2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056,
    2.052, 2.048, 2.045, 2.042,
];

/// Two-sided 95% Student-t critical value for `df` degrees of freedom:
/// table lookup through df = 30, then the first-order Cornish–Fisher
/// expansion `z + (z^3 + z) / (4 df)`, which decays to the normal limit
/// z = 1.96 as `df -> inf`.
fn t_critical_95(df: usize) -> f64 {
    const Z: f64 = 1.959_964;
    match df {
        0 => f64::NAN,
        1..=30 => T95[df - 1],
        _ => Z + (Z * Z * Z + Z) / (4.0 * df as f64),
    }
}

impl Stat {
    /// Reduces raw samples to mean ± CI. Non-finite samples are
    /// discarded (and counted in [`Stat::discarded`] plus the global
    /// [`nan_samples_total`] tally); the half-width uses the Student-t
    /// critical value for the surviving sample count, not the normal
    /// z = 1.96 (its n → ∞ limit), so small sweeps aren't reported with
    /// overconfident intervals.
    pub fn from_samples(samples: &[f64]) -> Stat {
        let clean: Vec<f64> = samples.iter().copied().filter(|v| v.is_finite()).collect();
        let n = clean.len();
        let discarded = samples.len() - n;
        if discarded > 0 {
            SWEEP_NAN_SAMPLES.fetch_add(discarded as u64, Ordering::Relaxed);
        }
        if n == 0 {
            return Stat {
                mean: f64::NAN,
                ci95: f64::NAN,
                n: 0,
                discarded,
            };
        }
        let mean = clean.iter().sum::<f64>() / n as f64;
        if n < 2 {
            return Stat {
                mean,
                ci95: 0.0,
                n,
                discarded,
            };
        }
        let var = clean.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (n as f64 - 1.0);
        Stat {
            mean,
            ci95: t_critical_95(n - 1) * (var / n as f64).sqrt(),
            n,
            discarded,
        }
    }
}

impl std::fmt::Display for Stat {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if let Some(prec) = f.precision() {
            write!(f, "{:.p$} ±{:.p$}", self.mean, self.ci95, p = prec)?;
        } else {
            write!(f, "{:.3} ±{:.3}", self.mean, self.ci95)?;
        }
        if self.discarded > 0 {
            write!(f, " [{} NaN dropped]", self.discarded)?;
        }
        Ok(())
    }
}

/// Reduces one guarded outcome to an `extract` sample: failed runs and
/// panicking extractors are quarantined into the failure ledger and
/// contribute a NaN, which [`Stat::from_samples`] counts as discarded —
/// so a poisoned point shrinks `n` visibly instead of sinking the sweep.
fn guarded_sample<F>(outcome: RunOutcome, extract: &F) -> f64
where
    F: Fn(&Metrics) -> f64 + Sync,
{
    match &outcome.result {
        Ok(metrics) => match catch_unwind(AssertUnwindSafe(|| extract(metrics))) {
            Ok(v) => v,
            Err(payload) => {
                let msg = format!(
                    "panicked: {} (in metric extraction)",
                    panic_message(payload)
                );
                quarantine(outcome.failure_record(msg));
                f64::NAN
            }
        },
        Err(failure) => {
            quarantine(outcome.failure_record(failure.to_string()));
            f64::NAN
        }
    }
}

/// Runs `runs` seeded simulations in parallel and reduces `extract` over
/// their metrics. Each run is panic-isolated ([`guarded_run_once`]):
/// failures surface as quarantined NaN samples, not a sweep-wide panic.
pub fn sweep_point<F>(
    protocol: ProtocolChoice,
    cfg: &ScenarioConfig,
    runs: usize,
    extract: F,
) -> Stat
where
    F: Fn(&Metrics) -> f64 + Sync,
{
    let start = std::time::Instant::now();
    let samples: Vec<f64> = (0..runs as u64)
        .into_par_iter()
        .map(|seed| {
            guarded_sample(
                guarded_run_once(protocol, cfg, 0xA1E7 + seed * 7919),
                &extract,
            )
        })
        .collect();
    let stat = Stat::from_samples(&samples);
    if progress_enabled() {
        let dropped = if stat.discarded > 0 {
            format!(" nan_dropped={}", stat.discarded)
        } else {
            String::new()
        };
        eprintln!(
            "[progress] {} n={} runs={} wall={:.2}s value={:.4} ±{:.4}{}",
            protocol.name(),
            cfg.nodes,
            runs,
            start.elapsed().as_secs_f64(),
            stat.mean,
            stat.ci95,
            dropped,
        );
    }
    stat
}

/// Runs `runs` seeded simulations in parallel and returns the full
/// metrics of each successful run (for curve-valued reductions). Failed
/// runs are quarantined into the failure ledger and skipped, so the
/// returned vector may be shorter than `runs`.
pub fn sweep_metrics(protocol: ProtocolChoice, cfg: &ScenarioConfig, runs: usize) -> Vec<Metrics> {
    let start = std::time::Instant::now();
    let metrics: Vec<Metrics> = (0..runs as u64)
        .into_par_iter()
        .filter_map(|seed| {
            let outcome = guarded_run_once(protocol, cfg, 0xA1E7 + seed * 7919);
            match outcome.result {
                Ok(m) => Some(m),
                Err(ref failure) => {
                    let msg = failure.to_string();
                    quarantine(outcome.failure_record(msg));
                    None
                }
            }
        })
        .collect();
    if progress_enabled() {
        eprintln!(
            "[progress] {} n={} runs={} wall={:.2}s (full metrics)",
            protocol.name(),
            cfg.nodes,
            runs,
            start.elapsed().as_secs_f64(),
        );
    }
    metrics
}

/// Element-wise mean of several equally-meaningful curves, truncated to
/// the shortest. Curves of unequal length are a symptom (e.g. a run
/// that ended early), so the dropped tail is reported on stderr rather
/// than silently discarded.
pub fn mean_curve(curves: &[Vec<f64>]) -> Vec<f64> {
    let n = curves.iter().map(Vec::len).min().unwrap_or(0);
    let longest = curves.iter().map(Vec::len).max().unwrap_or(0);
    if longest > n {
        eprintln!(
            "[mean_curve] curves disagree on length: truncating to {n} points, \
             dropping a {}-point tail",
            longest - n
        );
    }
    (0..n)
        .map(|i| curves.iter().map(|c| c[i]).sum::<f64>() / curves.len() as f64)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stat_of_constant_samples() {
        let s = Stat::from_samples(&[2.0, 2.0, 2.0, 2.0]);
        assert_eq!(s.mean, 2.0);
        assert_eq!(s.ci95, 0.0);
        assert_eq!(s.n, 4);
    }

    #[test]
    fn stat_discards_nan() {
        let before = nan_samples_total();
        let s = Stat::from_samples(&[1.0, f64::NAN, 3.0]);
        assert_eq!(s.mean, 2.0);
        assert_eq!(s.n, 2);
        assert_eq!(s.discarded, 1);
        assert!(nan_samples_total() >= before + 1);
        assert!(format!("{s}").contains("[1 NaN dropped]"));
    }

    #[test]
    fn stat_uses_student_t_not_z() {
        // n = 2 (df = 1): t = 12.706, half-width = t * s / sqrt(2).
        let s = Stat::from_samples(&[0.0, 2.0]);
        let sd = std::f64::consts::SQRT_2; // sample sd of {0, 2}
        assert!((s.ci95 - 12.706 * sd / std::f64::consts::SQRT_2).abs() < 1e-9);
    }

    #[test]
    fn t_critical_decays_to_the_normal_limit() {
        assert!((t_critical_95(1) - 12.706).abs() < 1e-9);
        assert!((t_critical_95(30) - 2.042).abs() < 1e-9);
        // Above the table: monotone decay towards z = 1.96.
        assert!(t_critical_95(31) < t_critical_95(30));
        assert!(t_critical_95(1000) > 1.9599);
        assert!((t_critical_95(100_000_000) - 1.96).abs() < 1e-4);
    }

    #[test]
    fn stat_ci_shrinks_with_n() {
        let few = Stat::from_samples(&[1.0, 2.0, 3.0, 4.0]);
        let many: Vec<f64> = (0..64).map(|i| 1.0 + (i % 4) as f64).collect();
        let many = Stat::from_samples(&many);
        assert!(many.ci95 < few.ci95);
    }

    #[test]
    fn stat_empty_is_nan() {
        let s = Stat::from_samples(&[]);
        assert!(s.mean.is_nan());
        assert_eq!(s.n, 0);
    }

    #[test]
    fn mean_curve_truncates() {
        let curves = vec![vec![1.0, 2.0, 3.0], vec![3.0, 4.0]];
        assert_eq!(mean_curve(&curves), vec![2.0, 3.0]);
    }

    #[test]
    fn try_run_once_reports_invalid_scenario() {
        let cfg = ScenarioConfig::default().with_nodes(0);
        let err = try_run_once(ProtocolChoice::Gpsr, &cfg, 1).unwrap_err();
        assert_eq!(err, RunFailure::Scenario(ScenarioError::NoNodes));
        assert_eq!(
            err.to_string(),
            "invalid scenario: scenario needs at least one node"
        );
    }

    #[test]
    fn try_run_once_reports_guardrail_aborts() {
        let mut cfg = ScenarioConfig::default().with_nodes(30).with_duration(5.0);
        cfg.traffic.pairs = 2;
        cfg.budget.max_events = Some(50);
        let err = try_run_once(ProtocolChoice::Gpsr, &cfg, 1).unwrap_err();
        assert!(
            matches!(
                err,
                RunFailure::Aborted(RunAbort::EventBudgetExhausted { budget: 50, .. })
            ),
            "{err:?}"
        );
    }

    #[test]
    fn guarded_run_once_isolates_failures_as_outcomes() {
        // An invalid scenario comes back as a structured outcome, and the
        // replay command pins protocol, geometry, and seed.
        let mut cfg = ScenarioConfig::default()
            .with_nodes(120)
            .with_duration(25.0);
        cfg.traffic.pairs = 4;
        let outcome = guarded_run_once(ProtocolChoice::Alarm, &cfg.clone().with_nodes(0), 7);
        assert!(matches!(
            outcome.result,
            Err(RunFailure::Scenario(ScenarioError::NoNodes))
        ));
        assert_eq!(
            outcome.replay_command(),
            "simrun --protocol alarm --nodes 0 --pairs 4 --duration 25 --seed 7"
        );
        // A healthy run produces metrics.
        let ok = guarded_run_once(ProtocolChoice::Gpsr, &cfg.clone().with_duration(5.0), 7);
        assert!(ok.result.is_ok(), "{:?}", ok.result);
    }

    /// The failure ledger is process-global; tests that drain it must
    /// not interleave or they steal each other's records.
    static LEDGER_TEST_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn sweeps_quarantine_failures_instead_of_panicking() {
        let _guard = LEDGER_TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        drop(drain_failures());
        let mut cfg = ScenarioConfig::default().with_nodes(30).with_duration(5.0);
        cfg.traffic.pairs = 2;
        cfg.budget.max_events = Some(10); // every seed aborts
        let before = failures_total();
        let stat = sweep_point(ProtocolChoice::Gpsr, &cfg, 3, Metrics::delivery_rate);
        assert_eq!(stat.n, 0, "all samples quarantined");
        assert_eq!(stat.discarded, 3);
        assert!(failures_total() >= before + 3);
        let drained = drain_failures();
        let ours: Vec<_> = drained
            .iter()
            .filter(|r| r.error.contains("event budget of 10"))
            .collect();
        assert_eq!(ours.len(), 3);
        assert!(ours[0].replay.starts_with("simrun --protocol gpsr"));
        // The ledger is drained.
        assert!(!drain_failures()
            .iter()
            .any(|r| r.error.contains("event budget of 10")));
    }

    #[test]
    fn sweep_point_quarantines_panicking_extractors() {
        let _guard = LEDGER_TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        drop(drain_failures());
        let mut cfg = ScenarioConfig::default().with_nodes(30).with_duration(5.0);
        cfg.traffic.pairs = 2;
        let stat = sweep_point(ProtocolChoice::Gpsr, &cfg, 2, |m| {
            if m.delivery_rate() >= 0.0 {
                panic!("planted extractor bug");
            }
            0.0
        });
        assert_eq!(stat.n, 0);
        assert_eq!(stat.discarded, 2);
        let drained = drain_failures();
        assert!(drained
            .iter()
            .any(|r| r.error.contains("planted extractor bug")));
    }

    #[test]
    fn failure_scopes_partition_the_ledger() {
        let _guard = LEDGER_TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let rec = |tag: &str| FailureRecord {
            protocol: tag.to_owned(),
            nodes: 1,
            seed: 0,
            error: "planted".to_owned(),
            replay: String::new(),
        };
        // Two scopes quarantine interleaved; each drain sees only its own.
        set_failure_scope(101);
        drop(drain_failures());
        quarantine(rec("scope-a"));
        set_failure_scope(102);
        drop(drain_failures());
        quarantine(rec("scope-b"));
        quarantine(rec("scope-b2"));

        let b = drain_failures(); // current scope: 102
        assert_eq!(b.len(), 2);
        assert!(b.iter().all(|r| r.protocol.starts_with("scope-b")));
        let a = drain_failures_scoped(101); // cross-thread committer path
        assert_eq!(a.len(), 1);
        assert_eq!(a[0].protocol, "scope-a");
        // Both partitions are now empty; scope 0 is untouched.
        assert!(drain_failures_scoped(101).is_empty());
        assert!(drain_failures_scoped(102).is_empty());
        set_failure_scope(0);
    }

    #[test]
    fn failure_scope_propagates_to_private_rayon_pools() {
        let _guard = LEDGER_TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        drop(drain_failures_scoped(201));
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(2)
            .start_handler(|_| set_failure_scope(201))
            .build()
            .expect("build scoped rayon pool");
        let mut cfg = ScenarioConfig::default().with_nodes(30).with_duration(5.0);
        cfg.traffic.pairs = 2;
        cfg.budget.max_events = Some(10); // every seed aborts
        pool.install(|| {
            set_failure_scope(201); // the installing closure's thread too
            let stat = sweep_point(ProtocolChoice::Gpsr, &cfg, 3, Metrics::delivery_rate);
            assert_eq!(stat.n, 0);
            set_failure_scope(0);
        });
        let ours = drain_failures_scoped(201);
        assert_eq!(ours.len(), 3, "all quarantines landed in the pool's scope");
        assert!(drain_failures_scoped(0)
            .iter()
            .all(|r| !r.error.contains("event budget of 10")));
    }

    #[test]
    fn run_instrumented_profiles_and_traces() {
        use alert_sim::{JsonlSink, SharedBuf};
        let mut cfg = ScenarioConfig::default().with_nodes(40).with_duration(5.0);
        cfg.traffic.pairs = 2;
        let buf = SharedBuf::default();
        let opts = RunOptions {
            trace: Some(Box::new(JsonlSink::new(buf.clone()))),
            profile: true,
            ..RunOptions::default()
        };
        let out = run_instrumented(ProtocolChoice::Gpsr, &cfg, 9, opts).unwrap();
        assert!(out.profile.events_dispatched > 0);
        assert!(out.profile.wall_clock_s > 0.0);
        assert!(out.profile.fel_high_water > 0);
        assert!(out.timeseries.is_none(), "sampling is opt-in");
        assert!(!out.profile.spans.is_empty(), "span attribution collected");
        assert!(!buf.contents().is_empty(), "trace sink received events");
        // The untraced path returns the same metrics for the same seed.
        let plain = try_run_once(ProtocolChoice::Gpsr, &cfg, 9).unwrap();
        assert_eq!(out.metrics.delivery_rate(), plain.delivery_rate());
    }

    #[test]
    fn run_instrumented_collects_timeseries() {
        let mut cfg = ScenarioConfig::default().with_nodes(40).with_duration(10.0);
        cfg.traffic.pairs = 2;
        let opts = RunOptions {
            metrics_every: Some(2.0),
            ..RunOptions::default()
        };
        let out = run_instrumented(ProtocolChoice::Gpsr, &cfg, 11, opts).unwrap();
        let series = out.timeseries.expect("sampling was requested");
        assert_eq!(series.every_s, 2.0);
        assert!(series.samples.len() >= 5, "10 s run at 2 s cadence");
        // The final cumulative row equals the whole-run registry totals.
        let last = series.samples.last().unwrap();
        for (name, value) in &out.registry.counters {
            assert_eq!(last.counters.get(name), Some(value), "counter {name}");
        }
        // Sampling does not perturb the simulation itself.
        let plain = try_run_once(ProtocolChoice::Gpsr, &cfg, 11).unwrap();
        assert_eq!(out.metrics.delivery_rate(), plain.delivery_rate());
    }

    #[test]
    fn postmortem_dump_written_on_abort() {
        let path = std::env::temp_dir().join(format!(
            "alert_postmortem_test_{}.jsonl",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&path);
        let mut cfg = ScenarioConfig::default().with_nodes(30).with_duration(5.0);
        cfg.traffic.pairs = 2;
        cfg.budget.max_events = Some(200);
        let opts = RunOptions {
            postmortem: Some(PostmortemDump {
                path: path.clone(),
                capacity: 64,
            }),
            ..RunOptions::default()
        };
        let err = run_instrumented(ProtocolChoice::Gpsr, &cfg, 5, opts).unwrap_err();
        assert!(matches!(err, RunFailure::Aborted(_)), "got {err}");
        let dump = std::fs::read_to_string(&path).expect("postmortem file written");
        let lines: Vec<&str> = dump.lines().collect();
        assert!(!lines.is_empty() && lines.len() <= 64);
        assert!(
            lines.last().unwrap().contains("\"ev\":\"run_aborted\""),
            "ring tail ends with the abort record: {}",
            lines.last().unwrap()
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn postmortem_untriggered_on_clean_run() {
        let path = std::env::temp_dir().join(format!(
            "alert_postmortem_clean_{}.jsonl",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&path);
        let mut cfg = ScenarioConfig::default().with_nodes(30).with_duration(5.0);
        cfg.traffic.pairs = 2;
        let opts = RunOptions {
            postmortem: Some(PostmortemDump::new(path.clone())),
            ..RunOptions::default()
        };
        run_instrumented(ProtocolChoice::Gpsr, &cfg, 5, opts).unwrap();
        assert!(!path.exists(), "clean runs leave no postmortem dump");
    }

    #[test]
    fn sweep_point_is_deterministic() {
        let mut cfg = ScenarioConfig::default().with_nodes(60).with_duration(10.0);
        cfg.traffic.pairs = 3;
        let a = sweep_point(ProtocolChoice::Gpsr, &cfg, 3, Metrics::delivery_rate);
        let b = sweep_point(ProtocolChoice::Gpsr, &cfg, 3, Metrics::delivery_rate);
        assert_eq!(a.mean, b.mean);
        assert_eq!(a.n, 3);
    }
}

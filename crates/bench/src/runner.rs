//! Monte-Carlo sweep infrastructure: run `(protocol, scenario)` across
//! seeds in parallel (Rayon) and reduce per-run metrics into
//! mean ± 95% CI — the paper's "average of results of 30 runs" with
//! confidence intervals (Section 5.2).

use alert_core::{Alert, AlertConfig};
use alert_protocols::{Alarm, Anodr, Ao2p, Gpsr, Mapcp, Mask, Prism, Zap};
use alert_sim::{Metrics, ScenarioConfig, World};
use rayon::prelude::*;

/// Which routing protocol a sweep point runs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ProtocolChoice {
    /// ALERT with the given parameters.
    Alert(AlertConfig),
    /// The GPSR baseline.
    Gpsr,
    /// The ALARM comparison protocol.
    Alarm,
    /// The AO2P comparison protocol.
    Ao2p,
    /// The ZAP destination-cloaking protocol, with its zone-growth factor
    /// (1.0 = countermeasure off).
    Zap {
        /// Per-packet anonymity-zone growth factor.
        growth: f64,
    },
    /// The ANODR topological onion-routing baseline.
    Anodr,
    /// The PRISM reactive geographic baseline.
    Prism,
    /// The MASK anonymous-neighborhood topological baseline.
    Mask,
    /// The MAPCP gossip middleware.
    Mapcp,
}

impl ProtocolChoice {
    /// Display name for table headers.
    pub fn name(&self) -> &'static str {
        match self {
            ProtocolChoice::Alert(_) => "ALERT",
            ProtocolChoice::Gpsr => "GPSR",
            ProtocolChoice::Alarm => "ALARM",
            ProtocolChoice::Ao2p => "AO2P",
            ProtocolChoice::Zap { .. } => "ZAP",
            ProtocolChoice::Anodr => "ANODR",
            ProtocolChoice::Prism => "PRISM",
            ProtocolChoice::Mask => "MASK",
            ProtocolChoice::Mapcp => "MAPCP",
        }
    }
}

/// Runs one simulation to completion and returns its metrics.
pub fn run_once(protocol: ProtocolChoice, cfg: &ScenarioConfig, seed: u64) -> Metrics {
    match protocol {
        ProtocolChoice::Alert(a) => {
            let mut w = World::new(cfg.clone(), seed, move |_, _| Alert::new(a));
            w.run();
            w.metrics().clone()
        }
        ProtocolChoice::Gpsr => {
            let mut w = World::new(cfg.clone(), seed, |_, _| Gpsr::default());
            w.run();
            w.metrics().clone()
        }
        ProtocolChoice::Alarm => {
            let mut w = World::new(cfg.clone(), seed, |_, _| Alarm::default());
            w.run();
            w.metrics().clone()
        }
        ProtocolChoice::Ao2p => {
            let mut w = World::new(cfg.clone(), seed, |_, _| Ao2p::default());
            w.run();
            w.metrics().clone()
        }
        ProtocolChoice::Zap { growth } => {
            let mut w = World::new(cfg.clone(), seed, move |_, _| Zap::with_growth(growth));
            w.run();
            w.metrics().clone()
        }
        ProtocolChoice::Anodr => {
            let mut w = World::new(cfg.clone(), seed, |_, _| Anodr::default());
            w.run();
            w.metrics().clone()
        }
        ProtocolChoice::Prism => {
            let mut w = World::new(cfg.clone(), seed, |_, _| Prism::default());
            w.run();
            w.metrics().clone()
        }
        ProtocolChoice::Mask => {
            let mut w = World::new(cfg.clone(), seed, |_, _| Mask::default());
            w.run();
            w.metrics().clone()
        }
        ProtocolChoice::Mapcp => {
            let mut w = World::new(cfg.clone(), seed, |_, _| Mapcp::default());
            w.run();
            w.metrics().clone()
        }
    }
}

/// A sample mean with its 95% confidence half-width.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Stat {
    /// Sample mean.
    pub mean: f64,
    /// 95% confidence half-width (`1.96 s / sqrt(n)`).
    pub ci95: f64,
    /// Number of samples.
    pub n: usize,
}

impl Stat {
    /// Reduces raw samples to mean ± CI. NaN samples are discarded.
    pub fn from_samples(samples: &[f64]) -> Stat {
        let clean: Vec<f64> = samples.iter().copied().filter(|v| v.is_finite()).collect();
        let n = clean.len();
        if n == 0 {
            return Stat {
                mean: f64::NAN,
                ci95: f64::NAN,
                n: 0,
            };
        }
        let mean = clean.iter().sum::<f64>() / n as f64;
        if n < 2 {
            return Stat { mean, ci95: 0.0, n };
        }
        let var = clean.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (n as f64 - 1.0);
        Stat {
            mean,
            ci95: 1.96 * (var / n as f64).sqrt(),
            n,
        }
    }
}

impl std::fmt::Display for Stat {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if let Some(prec) = f.precision() {
            write!(f, "{:.p$} ±{:.p$}", self.mean, self.ci95, p = prec)
        } else {
            write!(f, "{:.3} ±{:.3}", self.mean, self.ci95)
        }
    }
}

/// Runs `runs` seeded simulations in parallel and reduces `extract` over
/// their metrics.
pub fn sweep_point<F>(protocol: ProtocolChoice, cfg: &ScenarioConfig, runs: usize, extract: F) -> Stat
where
    F: Fn(&Metrics) -> f64 + Sync,
{
    let samples: Vec<f64> = (0..runs as u64)
        .into_par_iter()
        .map(|seed| extract(&run_once(protocol, cfg, 0xA1E7 + seed * 7919)))
        .collect();
    Stat::from_samples(&samples)
}

/// Runs `runs` seeded simulations in parallel and returns the full
/// metrics of each (for curve-valued reductions).
pub fn sweep_metrics(protocol: ProtocolChoice, cfg: &ScenarioConfig, runs: usize) -> Vec<Metrics> {
    (0..runs as u64)
        .into_par_iter()
        .map(|seed| run_once(protocol, cfg, 0xA1E7 + seed * 7919))
        .collect()
}

/// Element-wise mean of several equally-meaningful curves, truncated to
/// the shortest.
pub fn mean_curve(curves: &[Vec<f64>]) -> Vec<f64> {
    let n = curves.iter().map(Vec::len).min().unwrap_or(0);
    (0..n)
        .map(|i| curves.iter().map(|c| c[i]).sum::<f64>() / curves.len() as f64)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stat_of_constant_samples() {
        let s = Stat::from_samples(&[2.0, 2.0, 2.0, 2.0]);
        assert_eq!(s.mean, 2.0);
        assert_eq!(s.ci95, 0.0);
        assert_eq!(s.n, 4);
    }

    #[test]
    fn stat_discards_nan() {
        let s = Stat::from_samples(&[1.0, f64::NAN, 3.0]);
        assert_eq!(s.mean, 2.0);
        assert_eq!(s.n, 2);
    }

    #[test]
    fn stat_ci_shrinks_with_n() {
        let few = Stat::from_samples(&[1.0, 2.0, 3.0, 4.0]);
        let many: Vec<f64> = (0..64).map(|i| 1.0 + (i % 4) as f64).collect();
        let many = Stat::from_samples(&many);
        assert!(many.ci95 < few.ci95);
    }

    #[test]
    fn stat_empty_is_nan() {
        let s = Stat::from_samples(&[]);
        assert!(s.mean.is_nan());
        assert_eq!(s.n, 0);
    }

    #[test]
    fn mean_curve_truncates() {
        let curves = vec![vec![1.0, 2.0, 3.0], vec![3.0, 4.0]];
        assert_eq!(mean_curve(&curves), vec![2.0, 3.0]);
    }

    #[test]
    fn sweep_point_is_deterministic() {
        let mut cfg = ScenarioConfig::default().with_nodes(60).with_duration(10.0);
        cfg.traffic.pairs = 3;
        let a = sweep_point(ProtocolChoice::Gpsr, &cfg, 3, Metrics::delivery_rate);
        let b = sweep_point(ProtocolChoice::Gpsr, &cfg, 3, Metrics::delivery_rate);
        assert_eq!(a.mean, b.mean);
        assert_eq!(a.n, 3);
    }
}

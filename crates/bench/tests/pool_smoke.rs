//! End-to-end guarantees of the parallel campaign executor, exercised
//! through the real `repro` binary: parallel output is byte-identical
//! to serial output, a kill -9'd run resumes with no lost or duplicated
//! points, orphaned leases are reported and reclaimed, and the advisory
//! directory lock keeps a second orchestrator out.
//!
//! Under `cargo test` the binary path comes from `CARGO_BIN_EXE_repro`;
//! standalone harnesses (the offline check scripts) point `REPRO_BIN`
//! at a prebuilt binary instead.

use std::path::PathBuf;
use std::process::{Command, Output};

fn repro_bin() -> Option<PathBuf> {
    if let Some(p) = option_env!("CARGO_BIN_EXE_repro") {
        return Some(PathBuf::from(p));
    }
    std::env::var_os("REPRO_BIN").map(PathBuf::from)
}

fn repro(bin: &PathBuf, args: &[&str]) -> Output {
    Command::new(bin)
        .args(args)
        .output()
        .expect("spawn repro binary")
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("alert_pool_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn stderr_of(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

/// Analytic experiments: fast, deterministic, no Monte-Carlo sweeps.
const CAMPAIGN: [&str; 3] = ["fig7a", "fig9a", "fig9b"];

fn run_campaign(bin: &PathBuf, dir: &PathBuf, jobs: &str, extra: &[&str]) -> Output {
    let mut args: Vec<&str> = CAMPAIGN.to_vec();
    let d = dir.to_str().unwrap();
    args.extend_from_slice(&["--runs", "3", "--csv", d, "--jobs", jobs]);
    args.extend_from_slice(extra);
    repro(bin, &args)
}

#[test]
fn parallel_campaign_is_byte_identical_to_serial() {
    let Some(bin) = repro_bin() else {
        eprintln!("skipping: repro binary unavailable");
        return;
    };
    let serial = scratch_dir("serial");
    let parallel = scratch_dir("parallel");
    let a = run_campaign(&bin, &serial, "1", &[]);
    assert!(a.status.success(), "{}", stderr_of(&a));
    let b = run_campaign(&bin, &parallel, "3", &[]);
    assert!(b.status.success(), "{}", stderr_of(&b));

    assert_eq!(
        String::from_utf8_lossy(&a.stdout),
        String::from_utf8_lossy(&b.stdout),
        "stdout must not depend on the jobs count"
    );
    for t in CAMPAIGN {
        let sa = std::fs::read(serial.join(format!("{t}.csv"))).expect("serial csv");
        let pa = std::fs::read(parallel.join(format!("{t}.csv"))).expect("parallel csv");
        assert_eq!(sa, pa, "{t}.csv differs between --jobs 1 and --jobs 3");
    }

    // Pool health telemetry lands next to the CSVs and parses as the
    // standard timeseries schema.
    let ts =
        std::fs::read_to_string(parallel.join("pool-timeseries.jsonl")).expect("pool timeseries");
    assert!(
        ts.starts_with("{\"schema\":\"alert-timeseries/1\""),
        "unexpected timeseries header: {ts}"
    );
    assert!(ts.contains("pool.committed"), "{ts}");

    // No stage leftovers once the run commits.
    assert!(
        !parallel.join(".stage").exists(),
        "staging dir must be cleaned up"
    );
    let _ = std::fs::remove_dir_all(serial);
    let _ = std::fs::remove_dir_all(parallel);
}

#[test]
fn killed_parallel_run_resumes_with_no_lost_or_duplicated_points() {
    let Some(bin) = repro_bin() else {
        eprintln!("skipping: repro binary unavailable");
        return;
    };
    let clean = scratch_dir("kill_clean");
    let out = run_campaign(&bin, &clean, "1", &[]);
    assert!(out.status.success(), "{}", stderr_of(&out));

    // Start a 2-worker campaign and kill -9 the whole process while it
    // is (very likely) mid-lease. Whatever it managed to journal must
    // be honored on resume; whatever it did not must be re-run.
    let killed = scratch_dir("kill_victim");
    let d = killed.to_str().unwrap();
    let mut child = Command::new(&bin)
        .args([
            "fig7a", "fig9a", "fig9b", "--runs", "3", "--csv", d, "--jobs", "2",
        ])
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("spawn repro");
    std::thread::sleep(std::time::Duration::from_millis(30));
    let _ = child.kill(); // SIGKILL on unix
    let _ = child.wait();

    let out = run_campaign(&bin, &killed, "2", &["--resume"]);
    assert!(out.status.success(), "{}", stderr_of(&out));
    for t in CAMPAIGN {
        let a = std::fs::read(clean.join(format!("{t}.csv"))).expect("clean csv");
        let b = std::fs::read(killed.join(format!("{t}.csv"))).expect("resumed csv");
        assert_eq!(a, b, "{t}.csv differs after kill -9 + --resume");
    }
    // Exactly one terminal journal entry per experiment: nothing was
    // double-committed across the two passes.
    let manifest = std::fs::read_to_string(killed.join("manifest.jsonl")).unwrap();
    for t in CAMPAIGN {
        let done = manifest
            .lines()
            .filter(|l| l.contains(&format!("\"target\":\"{t}\"")) && l.contains("\"status\":"))
            .count();
        assert_eq!(done, 1, "{t} has {done} terminal entries:\n{manifest}");
    }
    let _ = std::fs::remove_dir_all(clean);
    let _ = std::fs::remove_dir_all(killed);
}

#[test]
fn orphaned_lease_is_reported_and_reclaimed_on_resume() {
    let Some(bin) = repro_bin() else {
        eprintln!("skipping: repro binary unavailable");
        return;
    };
    let dir = scratch_dir("orphan");
    let out = repro(
        &bin,
        &["fig7a", "--runs", "3", "--csv", dir.to_str().unwrap()],
    );
    assert!(out.status.success(), "{}", stderr_of(&out));

    // A lease with no terminal entry: the worker died mid-flight.
    {
        use std::io::Write as _;
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(dir.join("manifest.jsonl"))
            .unwrap();
        f.write_all(
            b"{\"rec\":\"lease\",\"target\":\"fig9a\",\"fingerprint\":1,\"worker\":1,\"attempt\":1,\"deadline_s\":1.0}\n",
        )
        .unwrap();
    }
    let out = repro(
        &bin,
        &[
            "fig7a",
            "fig9a",
            "--runs",
            "3",
            "--csv",
            dir.to_str().unwrap(),
            "--resume",
        ],
    );
    assert!(out.status.success(), "{}", stderr_of(&out));
    let err = stderr_of(&out);
    assert!(
        err.contains("[resume] reclaiming 1 orphaned lease(s)"),
        "orphan note missing:\n{err}"
    );
    assert!(err.contains("[resume] fig7a"), "fig7a skipped:\n{err}");
    assert!(
        dir.join("fig9a.csv").exists(),
        "the orphaned experiment must re-run"
    );
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn live_lock_holder_excludes_a_second_orchestrator() {
    let Some(bin) = repro_bin() else {
        eprintln!("skipping: repro binary unavailable");
        return;
    };
    let dir = scratch_dir("lock_live");
    std::fs::create_dir_all(&dir).unwrap();
    // PID 1 is always alive on Linux; the lock reads as held by a live
    // foreign orchestrator.
    std::fs::write(dir.join(".orchestrator.lock"), "1\n").unwrap();
    let out = repro(
        &bin,
        &["fig7a", "--runs", "3", "--csv", dir.to_str().unwrap()],
    );
    assert_eq!(out.status.code(), Some(2), "live lock must exit 2");
    let err = stderr_of(&out);
    assert!(
        err.contains("another orchestrator"),
        "diagnostic names the conflict:\n{err}"
    );
    assert!(
        err.contains(".orchestrator.lock"),
        "diagnostic names the lock file:\n{err}"
    );
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn stale_lock_is_stolen_and_released() {
    let Some(bin) = repro_bin() else {
        eprintln!("skipping: repro binary unavailable");
        return;
    };
    let dir = scratch_dir("lock_stale");
    std::fs::create_dir_all(&dir).unwrap();
    // Far above any real pid_max: the previous owner is provably dead.
    std::fs::write(dir.join(".orchestrator.lock"), "999999999\n").unwrap();
    let out = repro(
        &bin,
        &["fig7a", "--runs", "3", "--csv", dir.to_str().unwrap()],
    );
    assert!(
        out.status.success(),
        "stale lock must be stolen: {}",
        stderr_of(&out)
    );
    assert!(
        !dir.join(".orchestrator.lock").exists(),
        "lock must be released on clean exit"
    );
    let _ = std::fs::remove_dir_all(dir);
}

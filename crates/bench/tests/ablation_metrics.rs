//! Metric-level ablations for the design choices DESIGN.md § 5 calls out:
//! each knob must actually move the tradeoff it claims to control.
//! (The wall-clock cost of the same variants is fenced by
//! `benches/ablations.rs`.)

use alert_bench::{sweep_point, ProtocolChoice};
use alert_core::AlertConfig;
use alert_sim::{Metrics, ScenarioConfig};

fn scenario() -> ScenarioConfig {
    let mut cfg = ScenarioConfig::default()
        .with_nodes(200)
        .with_duration(40.0);
    cfg.traffic.pairs = 5;
    cfg
}

const RUNS: usize = 4;

/// k trades destination anonymity (zone population) against routing cost:
/// smaller k means more partitions, more RFs, longer paths.
#[test]
fn ablation_k_tradeoff() {
    let small_k = ProtocolChoice::Alert(AlertConfig::default().with_k(2.0)); // H = 7
    let large_k = ProtocolChoice::Alert(AlertConfig::default().with_k(25.0)); // H = 3
    let cfg = scenario();
    let rf_small = sweep_point(small_k, &cfg, RUNS, Metrics::mean_random_forwarders).mean;
    let rf_large = sweep_point(large_k, &cfg, RUNS, Metrics::mean_random_forwarders).mean;
    assert!(
        rf_small > rf_large + 0.8,
        "smaller k must buy more RFs: k=2 -> {rf_small:.2}, k=25 -> {rf_large:.2}"
    );
    // Both still deliver.
    for p in [small_k, large_k] {
        let d = sweep_point(p, &cfg, RUNS, Metrics::delivery_rate).mean;
        assert!(d > 0.9, "{}: delivery {d}", p.name());
    }
}

/// Notify-and-go buys eta-anonymity with cover traffic, at negligible
/// latency cost when t/t0 are small.
#[test]
fn ablation_notify_and_go() {
    let on = ProtocolChoice::Alert(AlertConfig::default());
    let off = ProtocolChoice::Alert(AlertConfig::default().with_notify_and_go(false));
    let cfg = scenario();
    let cover_on = sweep_point(on, &cfg, RUNS, |m| m.cover_frames as f64).mean;
    let cover_off = sweep_point(off, &cfg, RUNS, |m| m.cover_frames as f64).mean;
    assert!(cover_on > 1000.0, "cover traffic missing: {cover_on}");
    assert_eq!(cover_off, 0.0);
    let lat_on = sweep_point(on, &cfg, RUNS, |m| m.mean_latency().unwrap_or(f64::NAN)).mean;
    let lat_off = sweep_point(off, &cfg, RUNS, |m| m.mean_latency().unwrap_or(f64::NAN)).mean;
    assert!(
        (lat_on - lat_off).abs() < 0.015,
        "notify-and-go latency cost too high: {:.1} ms",
        (lat_on - lat_off) * 1000.0
    );
}

/// A longer notify window t0 spreads the cover burst (less interference)
/// but delays the data packet proportionally.
#[test]
fn ablation_notify_window() {
    let slow = AlertConfig {
        notify_t0_s: 0.050,
        ..AlertConfig::default()
    };
    let fast = ProtocolChoice::Alert(AlertConfig::default()); // t0 = 4 ms
    let slow = ProtocolChoice::Alert(slow);
    let cfg = scenario();
    let lat_fast = sweep_point(fast, &cfg, RUNS, |m| m.mean_latency().unwrap_or(f64::NAN)).mean;
    let lat_slow = sweep_point(slow, &cfg, RUNS, |m| m.mean_latency().unwrap_or(f64::NAN)).mean;
    let delta_ms = (lat_slow - lat_fast) * 1000.0;
    // Mean extra back-off is (50 - 4)/2 = 23 ms.
    assert!(
        (10.0..45.0).contains(&delta_ms),
        "t0=50ms should add ~23 ms, added {delta_ms:.1} ms"
    );
}

/// The intersection defense trades delivery latency (held until the next
/// packet) for destination unobservability; larger m covers the zone at
/// more multicast cost.
#[test]
fn ablation_intersection_m() {
    let cfg = scenario();
    let plain = ProtocolChoice::Alert(AlertConfig::default());
    let m2 = ProtocolChoice::Alert(AlertConfig::default().with_intersection_defense(2));
    let lat_plain = sweep_point(plain, &cfg, RUNS, |m| m.mean_latency().unwrap_or(f64::NAN)).mean;
    let lat_def = sweep_point(m2, &cfg, RUNS, |m| m.mean_latency().unwrap_or(f64::NAN)).mean;
    assert!(
        lat_def > lat_plain + 0.5,
        "defense must delay delivery to the next packet arrival: {lat_plain:.3}s -> {lat_def:.3}s"
    );
    // The closed-form coverage model agrees on direction: more holders,
    // more coverage.
    let c2 = alert_core::coverage_percent(2, 6, 0.6);
    let c4 = alert_core::coverage_percent(4, 6, 0.6);
    assert!(c4 > c2);
}

/// Confirmation + retransmission buys delivery under channel loss at the
/// cost of duplicate data traffic. (Against *stale locations* a
/// retransmission reuses the same stale destination zone and rescues
/// little — measured +2% — which is why the zone-edge handover exists;
/// transient channel losses are where the retransmit earns its keep.)
#[test]
fn ablation_retransmission() {
    let mut cfg = scenario();
    cfg.mac.loss_probability = 0.04; // ~4% per-frame loss
    let no_retx = AlertConfig {
        confirm_and_retransmit: false,
        ..AlertConfig::default()
    };
    let with = ProtocolChoice::Alert(AlertConfig::default());
    let without = ProtocolChoice::Alert(no_retx);
    let d_with = sweep_point(with, &cfg, RUNS, Metrics::delivery_rate).mean;
    let d_without = sweep_point(without, &cfg, RUNS, Metrics::delivery_rate).mean;
    assert!(
        d_with > d_without + 0.05,
        "retransmission should rescue channel losses: {d_without:.3} -> {d_with:.3}"
    );
    assert!(d_with > 0.9, "rescued delivery {d_with:.3} still too low");
}

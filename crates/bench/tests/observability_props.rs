//! Property-based conservation laws tying the three observability
//! layers together: for any run, the per-window aggregates computed
//! from the event trace and the per-window deltas of the sampled
//! metrics timeseries must both sum to the whole-run registry totals.
//! Cases are few (each is a full simulation) but the seeds, scale, and
//! window size vary freely.

use alert_bench::{run_instrumented, ProtocolChoice, RunOptions};
use alert_sim::{parse_trace, window_aggregates, JsonlSink, ScenarioConfig, SharedBuf};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn window_aggregates_and_timeseries_sum_to_registry_totals(
        seed in any::<u64>(),
        nodes in 30usize..50,
        pairs in 1usize..4,
        every in 1u32..6,
    ) {
        let every = f64::from(every);
        let mut cfg = ScenarioConfig::default().with_nodes(nodes).with_duration(8.0);
        cfg.traffic.pairs = pairs;
        let buf = SharedBuf::new();
        let opts = RunOptions {
            trace: Some(Box::new(JsonlSink::new(buf.clone()))),
            metrics_every: Some(every),
            ..RunOptions::default()
        };
        let out = run_instrumented(ProtocolChoice::Gpsr, &cfg, seed, opts)
            .expect("valid scenario");
        let counter = |name: &str| out.registry.counters.get(name).copied().unwrap_or(0);

        // Layer 1 → whole run: the trace's window aggregates are a
        // partition of the run, so every column sums to the registry's
        // matching total.
        let events = parse_trace(&buf.contents()).expect("own trace parses");
        let windows = window_aggregates(&events, every);
        let kind_sum = |kind: &str| -> u64 {
            windows
                .iter()
                .map(|w| w.by_kind.get(kind).copied().unwrap_or(0))
                .sum()
        };
        prop_assert_eq!(kind_sum("tx"), counter("tx.frames"));
        prop_assert_eq!(kind_sum("rx"), counter("rx.frames"));
        prop_assert_eq!(
            windows.iter().map(|w| w.tx_bytes).sum::<u64>(),
            counter("tx.bytes")
        );
        prop_assert_eq!(
            windows.iter().flat_map(|w| w.drops.values()).sum::<u64>(),
            counter("drops")
        );
        prop_assert_eq!(
            windows.iter().map(|w| w.delivered).sum::<u64>(),
            counter("delivered")
        );
        let latency_total: f64 = windows.iter().map(|w| w.latency_sum).sum();
        let hist_total = out.registry.histograms.get("latency_s").map_or(0.0, |h| h.sum);
        prop_assert!((latency_total - hist_total).abs() < 1e-6,
            "latency sums diverged: windows {latency_total} vs registry {hist_total}");

        // Layer 2 → whole run: the timeseries' final cumulative row and
        // the sum of its per-window deltas both equal the registry.
        let series = out.timeseries.as_ref().expect("sampling was enabled");
        prop_assert!(!series.samples.is_empty());
        let last = series.samples.last().unwrap();
        for (name, &total) in &out.registry.counters {
            prop_assert_eq!(last.counters.get(name).copied(), Some(total),
                "final cumulative row disagrees for '{}'", name);
            let delta_sum: u64 = series.samples.iter()
                .map(|s| s.deltas.get(name).copied().unwrap_or(0))
                .sum();
            prop_assert_eq!(delta_sum, total, "deltas do not telescope for '{}'", name);
        }
        for pair in series.samples.windows(2) {
            prop_assert!(pair[0].t < pair[1].t, "sample times must increase");
        }
    }

    /// Encode → parse → encode is the identity for any recorded series
    /// shape (the stored bytes are canonical).
    #[test]
    fn timeseries_codec_round_trips(
        seed in any::<u64>(),
        every in 1u32..6,
    ) {
        let every = f64::from(every);
        let mut cfg = ScenarioConfig::default().with_nodes(30).with_duration(6.0);
        cfg.traffic.pairs = 1;
        let opts = RunOptions { metrics_every: Some(every), ..RunOptions::default() };
        let out = run_instrumented(ProtocolChoice::Gpsr, &cfg, seed, opts)
            .expect("valid scenario");
        let series = out.timeseries.expect("sampling was enabled");
        let doc = series.to_jsonl();
        let back = alert_sim::MetricsTimeseries::parse(&doc).expect("own encoding parses");
        prop_assert_eq!(&back, &series);
        prop_assert_eq!(back.to_jsonl(), doc);
    }
}

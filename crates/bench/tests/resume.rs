//! Crash-safe orchestration guarantees of the `repro` binary: an
//! interrupted campaign resumed with `--resume` produces byte-identical
//! CSVs to an uninterrupted one, fingerprint mismatches force re-runs,
//! and planted failures are quarantined without sinking the campaign.
//!
//! Runs `repro` as a real subprocess. Under `cargo test` the path comes
//! from `CARGO_BIN_EXE_repro`; standalone harnesses (the offline check
//! scripts) can point `REPRO_BIN` at a prebuilt binary instead.

use std::path::PathBuf;
use std::process::{Command, Output};

fn repro_bin() -> Option<PathBuf> {
    if let Some(p) = option_env!("CARGO_BIN_EXE_repro") {
        return Some(PathBuf::from(p));
    }
    std::env::var_os("REPRO_BIN").map(PathBuf::from)
}

/// Runs `repro` with `args`; panics on spawn failure, returns the
/// captured output otherwise.
fn repro(bin: &PathBuf, args: &[&str]) -> Output {
    Command::new(bin)
        .args(args)
        .output()
        .expect("spawn repro binary")
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("alert_resume_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn stderr_of(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

/// The analytic experiments (no Monte-Carlo sweeps) — fast enough to
/// run as subprocess campaigns inside a test.
const CAMPAIGN: [&str; 3] = ["fig7a", "fig9a", "fig9b"];

#[test]
fn interrupted_campaign_resumes_to_identical_csvs() {
    let Some(bin) = repro_bin() else {
        eprintln!("skipping: repro binary unavailable");
        return;
    };
    // Reference: the campaign in one uninterrupted pass.
    let clean = scratch_dir("clean");
    let out = repro(
        &bin,
        &[
            "fig7a",
            "fig9a",
            "fig9b",
            "--runs",
            "3",
            "--csv",
            clean.to_str().unwrap(),
        ],
    );
    assert!(out.status.success(), "{}", stderr_of(&out));

    // Interrupted: only the first experiment lands, then the "process
    // dies" mid-append — emulated by a torn trailing manifest line.
    let resumed = scratch_dir("resumed");
    let out = repro(
        &bin,
        &["fig7a", "--runs", "3", "--csv", resumed.to_str().unwrap()],
    );
    assert!(out.status.success(), "{}", stderr_of(&out));
    {
        use std::io::Write as _;
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(resumed.join("manifest.jsonl"))
            .unwrap();
        f.write_all(b"{\"target\":\"fig9a\",\"finger").unwrap();
    }

    // Resume the full campaign: fig7a must be skipped, the torn fig9a
    // line ignored (and re-run), and the final CSVs byte-identical to
    // the uninterrupted pass.
    let out = repro(
        &bin,
        &[
            "fig7a",
            "fig9a",
            "fig9b",
            "--runs",
            "3",
            "--csv",
            resumed.to_str().unwrap(),
            "--resume",
        ],
    );
    assert!(out.status.success(), "{}", stderr_of(&out));
    let err = stderr_of(&out);
    assert!(
        err.contains("[resume] fig7a"),
        "fig7a should be skipped:\n{err}"
    );
    assert!(!err.contains("[resume] fig9a"), "fig9a must re-run:\n{err}");

    for t in CAMPAIGN {
        let a = std::fs::read(clean.join(format!("{t}.csv"))).expect("clean csv");
        let b = std::fs::read(resumed.join(format!("{t}.csv"))).expect("resumed csv");
        assert_eq!(a, b, "{t}.csv differs between clean and resumed runs");
    }
    let _ = std::fs::remove_dir_all(clean);
    let _ = std::fs::remove_dir_all(resumed);
}

#[test]
fn fingerprint_mismatch_forces_rerun() {
    let Some(bin) = repro_bin() else {
        eprintln!("skipping: repro binary unavailable");
        return;
    };
    let dir = scratch_dir("fingerprint");
    let out = repro(
        &bin,
        &["fig7a", "--runs", "3", "--csv", dir.to_str().unwrap()],
    );
    assert!(out.status.success(), "{}", stderr_of(&out));

    // Same target, different --runs: the journaled fingerprint no
    // longer matches, so --resume must re-run rather than skip.
    let out = repro(
        &bin,
        &[
            "fig7a",
            "--runs",
            "4",
            "--csv",
            dir.to_str().unwrap(),
            "--resume",
        ],
    );
    assert!(out.status.success(), "{}", stderr_of(&out));
    assert!(
        !stderr_of(&out).contains("[resume]"),
        "a changed campaign shape must not be skipped"
    );
    let manifest = std::fs::read_to_string(dir.join("manifest.jsonl")).unwrap();
    // Count terminal entries only — the journal also carries lease
    // records, one (or more) per claim.
    let terminal = manifest
        .lines()
        .filter(|l| l.contains("\"status\":"))
        .count();
    assert_eq!(terminal, 2, "both passes journaled:\n{manifest}");
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn resume_requires_csv() {
    let Some(bin) = repro_bin() else {
        eprintln!("skipping: repro binary unavailable");
        return;
    };
    let out = repro(&bin, &["fig7a", "--resume"]);
    assert_eq!(out.status.code(), Some(2), "usage errors exit 2");
    assert!(stderr_of(&out).contains("--resume requires --csv"));
}

#[test]
fn unknown_experiment_fails_before_any_work() {
    let Some(bin) = repro_bin() else {
        eprintln!("skipping: repro binary unavailable");
        return;
    };
    let dir = scratch_dir("unknown");
    let out = repro(
        &bin,
        &[
            "fig7a",
            "fig99",
            "--runs",
            "2",
            "--csv",
            dir.to_str().unwrap(),
        ],
    );
    assert_eq!(out.status.code(), Some(2), "usage errors exit 2");
    assert!(stderr_of(&out).contains("unknown experiment 'fig99'"));
    // Upfront validation: nothing ran, nothing was journaled.
    assert!(!dir.exists(), "no artifacts before validation passes");
}

#[test]
fn planted_panic_point_is_quarantined_not_fatal() {
    let Some(bin) = repro_bin() else {
        eprintln!("skipping: repro binary unavailable");
        return;
    };
    let dir = scratch_dir("quarantine");
    // The hidden __panic-point drill plants a panicking sweep point;
    // fig7a after it must still run to completion.
    let out = repro(
        &bin,
        &[
            "__panic-point",
            "fig7a",
            "--runs",
            "2",
            "--csv",
            dir.to_str().unwrap(),
        ],
    );
    assert_eq!(out.status.code(), Some(1), "quarantined failures exit 1");
    assert!(
        dir.join("fig7a.csv").exists(),
        "the campaign completes past the failing experiment"
    );
    let failures = std::fs::read_to_string(dir.join("failures.jsonl")).expect("failure report");
    assert!(
        failures.contains("planted panic: __panic-point"),
        "failure report carries the panic: {failures}"
    );
    assert!(
        failures.contains("\"replay\":\"simrun --protocol gpsr"),
        "each quarantined run carries a replay command: {failures}"
    );
    let manifest = std::fs::read_to_string(dir.join("manifest.jsonl")).unwrap();
    assert!(manifest.contains("\"target\":\"__panic-point\""));
    assert!(manifest.contains("\"status\":\"failed\""));

    // --resume skips the completed fig7a but retries the failed drill.
    let out = repro(
        &bin,
        &[
            "__panic-point",
            "fig7a",
            "--runs",
            "2",
            "--csv",
            dir.to_str().unwrap(),
            "--resume",
        ],
    );
    assert_eq!(out.status.code(), Some(1));
    let err = stderr_of(&out);
    assert!(err.contains("[resume] fig7a"), "fig7a skipped:\n{err}");
    assert!(
        !err.contains("[resume] __panic-point"),
        "failed experiments must be retried:\n{err}"
    );
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn experiment_level_panic_does_not_sink_the_campaign() {
    let Some(bin) = repro_bin() else {
        eprintln!("skipping: repro binary unavailable");
        return;
    };
    let dir = scratch_dir("exp_panic");
    let out = repro(
        &bin,
        &[
            "__panic-experiment",
            "fig7a",
            "--runs",
            "2",
            "--csv",
            dir.to_str().unwrap(),
        ],
    );
    assert_eq!(out.status.code(), Some(1));
    assert!(
        dir.join("fig7a.csv").exists(),
        "later experiments still run"
    );
    let failures = std::fs::read_to_string(dir.join("failures.jsonl")).expect("failure report");
    assert!(failures.contains("planted panic: __panic-experiment"));
    let _ = std::fs::remove_dir_all(dir);
}

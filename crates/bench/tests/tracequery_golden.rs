//! Golden-file determinism tests for the trace query engine and the
//! timeseries codec, over the hand-crafted (RNG-independent) fixture
//! trace in `tests/fixtures/`. The committed goldens are the same files
//! the CI `tracequery-smoke` job diffs the binary's output against, so
//! these tests and the smoke job pin the exact same bytes.
//!
//! The query pipeline consumes only the stored trace — no simulation,
//! no RNG — so its output must be byte-identical across machines,
//! builds, and repeated runs.

use alert_adversary::anonymity_timeseries;
use alert_sim::{
    filter_events, follow_packet, parse_trace, render_events_csv, render_events_jsonl,
    render_windows_csv, render_windows_json, window_aggregates, EventFilter, MetricsTimeseries,
};

const TRACE: &str = include_str!("fixtures/trace.jsonl");
const SERIES: &str = include_str!("fixtures/series.jsonl");

#[test]
fn fixture_trace_is_canonical() {
    // The fixture is written in the codec's canonical form, so parsing
    // and re-rendering it is the identity — the same guarantee live
    // traces carry.
    let events = parse_trace(TRACE).expect("fixture parses");
    let all: Vec<_> = events.iter().collect();
    assert_eq!(render_events_jsonl(&all), TRACE);
}

#[test]
fn filter_matches_goldens() {
    let events = parse_trace(TRACE).unwrap();
    let node3 = EventFilter {
        node: Some(3),
        ..EventFilter::default()
    };
    assert_eq!(
        render_events_csv(&filter_events(&events, &node3)),
        include_str!("fixtures/golden/filter_node3.csv")
    );
    let drops = EventFilter {
        kind: Some("drop".to_owned()),
        ..EventFilter::default()
    };
    assert_eq!(
        render_events_csv(&filter_events(&events, &drops)),
        include_str!("fixtures/golden/filter_drops.csv")
    );
}

#[test]
fn follow_matches_golden() {
    let events = parse_trace(TRACE).unwrap();
    assert_eq!(
        render_events_jsonl(&follow_packet(&events, 0)),
        include_str!("fixtures/golden/follow_packet0.jsonl")
    );
}

#[test]
fn window_aggregates_match_goldens() {
    let events = parse_trace(TRACE).unwrap();
    let windows = window_aggregates(&events, 5.0);
    assert_eq!(
        render_windows_csv(&windows),
        include_str!("fixtures/golden/windows.csv")
    );
    assert_eq!(
        render_windows_json(5.0, &windows),
        include_str!("fixtures/golden/windows.json")
    );
}

#[test]
fn query_output_is_byte_deterministic() {
    // Same trace, two independent passes → byte-identical output for
    // every query type.
    let run = || {
        let events = parse_trace(TRACE).unwrap();
        let windows = window_aggregates(&events, 5.0);
        let mut out = render_windows_csv(&windows);
        out.push_str(&render_windows_json(5.0, &windows));
        out.push_str(&render_events_jsonl(&follow_packet(&events, 2)));
        out.push_str(&format!("{:?}", anonymity_timeseries(&events, 5.0)));
        out
    };
    assert_eq!(run(), run());
}

#[test]
fn anonymity_telemetry_matches_the_committed_golden_story() {
    // The numbers behind fixtures/golden/anonymity*.csv: session 0's
    // intersection shrinks {3,4,5} ∩ {3,5,7} = {3,5} (destination 5
    // still hidden among 2 candidates); session 1's single observation
    // {6} excludes its destination 8 outright.
    let events = parse_trace(TRACE).unwrap();
    let flows = anonymity_timeseries(&events, 5.0);
    assert_eq!(flows.len(), 2);

    let s0 = &flows[0];
    assert_eq!((s0.session, s0.src, s0.dst), (0, 1, 5));
    let cands: Vec<usize> = s0.samples.iter().map(|s| s.candidates).collect();
    assert_eq!(cands, [3, 2, 2]);
    assert!(!s0.identified && !s0.destination_excluded);
    assert_eq!(s0.final_candidates, 2);

    let s1 = &flows[1];
    assert_eq!((s1.session, s1.src, s1.dst), (1, 2, 8));
    assert!(s1.destination_excluded && !s1.identified);
    assert_eq!(s1.final_candidates, 1);
    // A lone candidate carries no uncertainty — and renders as plain
    // 0.0, not -0.0.
    assert_eq!(s1.samples[0].entropy_bits.to_bits(), 0.0f64.to_bits());
}

#[test]
fn timeseries_fixture_is_canonical_and_rates_derive() {
    let series = MetricsTimeseries::parse(SERIES).expect("fixture parses");
    // Canonical round-trip: the committed fixture is exactly what the
    // encoder would write.
    assert_eq!(series.to_jsonl(), SERIES);
    assert_eq!(series.samples.len(), 3);
    // Derived rates behind fixtures/golden/rates*.csv.
    assert_eq!(series.samples[0].rate("tx.frames", series.every_s), 2.0);
    assert_eq!(series.samples[1].rate("tx.frames", series.every_s), 1.2);
    assert_eq!(series.samples[2].rate("app.packets", series.every_s), 0.0);
    // The final cumulative row equals the sum of all deltas.
    let total: u64 = series.samples.iter().map(|s| s.deltas["tx.frames"]).sum();
    assert_eq!(total, series.samples.last().unwrap().counters["tx.frames"]);
}

//! Property tests for the leased work queue: under ANY interleaving of
//! claims, lease expiries, failures, retries, and duplicate
//! completions, every unit reaches exactly one effective terminal
//! outcome (one `Completion::First` or one exhausted failure), attempt
//! numbers never exceed the cap, and a cooperative drain always
//! converges.
//!
//! These are the at-least-once-execution / exactly-once-effect
//! guarantees the parallel campaign executor leans on; the interleaving
//! space here is far larger than what the threaded `run_pool` smoke
//! tests can reach.

use alert_bench::{Claim, Completion, FailDisposition, LeaseQueue, PoolOptions};
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::time::Duration;

/// One step of an adversarial schedule.
#[derive(Debug, Clone)]
enum Op {
    /// A worker asks for work.
    Claim(usize),
    /// Wall clock advances by `n * 0.05` seconds.
    Advance(u16),
    /// Expired leases are reclaimed.
    Expire,
    /// The n-th (mod len) outstanding claim finishes successfully.
    CompleteNth(u8),
    /// The n-th (mod len) outstanding claim reports failure.
    FailNth(u8),
    /// A straggler re-reports completion of a unit it once held —
    /// must be deduplicated if the unit is already terminal.
    StraggleNth(u8),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..4usize).prop_map(Op::Claim),
        (0..40u16).prop_map(Op::Advance),
        Just(Op::Expire),
        any::<u8>().prop_map(Op::CompleteNth),
        any::<u8>().prop_map(Op::FailNth),
        any::<u8>().prop_map(Op::StraggleNth),
    ]
}

/// Ledger of terminal effects observed per unit.
#[derive(Default)]
struct Effects {
    first_completions: BTreeMap<usize, u32>,
    exhausted_failures: BTreeMap<usize, u32>,
}

impl Effects {
    fn complete(&mut self, index: usize) {
        *self.first_completions.entry(index).or_insert(0) += 1;
    }
    fn exhaust(&mut self, index: usize) {
        *self.exhausted_failures.entry(index).or_insert(0) += 1;
    }
    fn total(&self, index: usize) -> u32 {
        self.first_completions.get(&index).copied().unwrap_or(0)
            + self.exhausted_failures.get(&index).copied().unwrap_or(0)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn any_interleaving_yields_exactly_once_effects(
        units in 1..12usize,
        max_attempts in 1..4u32,
        ops in prop::collection::vec(op_strategy(), 0..200),
    ) {
        let opts = PoolOptions {
            lease: Duration::from_millis(200),
            max_attempts,
            backoff_base: Duration::from_millis(50),
            backoff_cap: Duration::from_millis(300),
            ..PoolOptions::default()
        };
        let mut q = LeaseQueue::new(units, &opts);
        let mut now = 0.0f64;
        let mut in_flight: Vec<usize> = Vec::new();
        let mut ever_claimed: Vec<usize> = Vec::new();
        let mut effects = Effects::default();

        for op in ops {
            match op {
                Op::Claim(worker) => {
                    for i in q.expire(now) {
                        effects.exhaust(i);
                    }
                    match q.claim(worker, now) {
                        Claim::Unit { index, attempt } => {
                            prop_assert!(attempt >= 1);
                            prop_assert!(
                                attempt <= q.max_attempts(),
                                "attempt {attempt} exceeds cap {}",
                                q.max_attempts()
                            );
                            in_flight.push(index);
                            ever_claimed.push(index);
                        }
                        Claim::Wait { until } => {
                            prop_assert!(until.is_finite() || q.is_drained());
                        }
                        Claim::Drained => prop_assert!(q.is_drained()),
                    }
                }
                Op::Advance(n) => now += f64::from(n) * 0.05,
                Op::Expire => {
                    for i in q.expire(now) {
                        effects.exhaust(i);
                    }
                }
                Op::CompleteNth(n) => {
                    if !in_flight.is_empty() {
                        let index = in_flight.remove(usize::from(n) % in_flight.len());
                        if q.complete(index) == Completion::First {
                            effects.complete(index);
                        }
                    }
                }
                Op::FailNth(n) => {
                    if !in_flight.is_empty() {
                        let index = in_flight.remove(usize::from(n) % in_flight.len());
                        if q.fail(index, now) == FailDisposition::Exhausted {
                            effects.exhaust(index);
                        }
                    }
                }
                Op::StraggleNth(n) => {
                    if !ever_claimed.is_empty() {
                        let index = ever_claimed[usize::from(n) % ever_claimed.len()];
                        if q.complete(index) == Completion::First {
                            // A straggler can legitimately be first if
                            // its lease expired but the unit was
                            // re-queued and not yet reclaimed.
                            effects.complete(index);
                        }
                    }
                }
            }
            // Exactly-once is an invariant at every step, not just at
            // the end: a unit never accumulates two terminal effects.
            for index in 0..units {
                prop_assert!(
                    effects.total(index) <= 1,
                    "unit {index} got {} terminal effects mid-run",
                    effects.total(index)
                );
            }
        }

        // Cooperative drain: a single diligent worker finishes whatever
        // the adversarial schedule left behind, in bounded steps.
        let mut steps = 0u32;
        while !q.is_drained() {
            steps += 1;
            prop_assert!(steps < 50_000, "drain did not converge");
            for i in q.expire(now) {
                effects.exhaust(i);
            }
            match q.claim(0, now) {
                Claim::Unit { index, .. } => {
                    if q.complete(index) == Completion::First {
                        effects.complete(index);
                    }
                }
                Claim::Wait { until } => {
                    prop_assert!(until.is_finite(), "wait with nothing outstanding");
                    now = now.max(until) + 1e-6;
                }
                Claim::Drained => break,
            }
        }

        // Exactly one effective terminal outcome per unit, no unit lost.
        for index in 0..units {
            prop_assert_eq!(
                effects.total(index),
                1,
                "unit {} finished with {} terminal effects",
                index,
                effects.total(index)
            );
        }
        // Every terminal unit was leased at least once (no unit can
        // complete or exhaust without a claim somewhere in its history).
        let (leases, _expired, _retries, _dups) = q.counters();
        prop_assert!(leases >= units as u64);
    }

    #[test]
    fn drain_from_scratch_completes_every_unit(
        units in 1..24usize,
        jobs in 1..5usize,
    ) {
        let opts = PoolOptions {
            lease: Duration::from_millis(100),
            ..PoolOptions::default()
        };
        let mut q = LeaseQueue::new(units, &opts);
        let mut now = 0.0;
        let mut firsts = 0usize;
        let mut steps = 0u32;
        while !q.is_drained() {
            steps += 1;
            prop_assert!(steps < 50_000);
            q.expire(now);
            for worker in 0..jobs {
                match q.claim(worker, now) {
                    Claim::Unit { index, .. } => {
                        if q.complete(index) == Completion::First {
                            firsts += 1;
                        }
                    }
                    Claim::Wait { until } if until.is_finite() => now = now.max(until) + 1e-6,
                    _ => {}
                }
            }
        }
        prop_assert_eq!(firsts, units);
    }
}

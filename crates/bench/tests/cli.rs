//! Integration tests of the two command-line tools, run as real
//! subprocesses via `CARGO_BIN_EXE_*`.

use std::process::Command;

fn repro() -> Command {
    Command::new(env!("CARGO_BIN_EXE_repro"))
}

fn simrun() -> Command {
    Command::new(env!("CARGO_BIN_EXE_simrun"))
}

fn tracequery() -> Command {
    Command::new(env!("CARGO_BIN_EXE_tracequery"))
}

fn fixture(name: &str) -> String {
    format!("{}/tests/fixtures/{name}", env!("CARGO_MANIFEST_DIR"))
}

#[test]
fn repro_renders_an_analytic_figure() {
    let out = repro().args(["fig7b"]).output().expect("spawn repro");
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("Fig. 7b"));
    assert!(text.contains("E[RFs]"));
    // Ten data rows for H = 1..10.
    assert_eq!(
        text.lines()
            .filter(|l| l.trim().starts_with(char::is_numeric))
            .count(),
        10
    );
}

#[test]
fn repro_rejects_unknown_experiment() {
    let out = repro().args(["fig99"]).output().expect("spawn repro");
    assert!(!out.status.success());
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("unknown experiment"));
}

#[test]
fn repro_writes_csv() {
    let dir = std::env::temp_dir().join(format!("alert_csv_{}", std::process::id()));
    let out = repro()
        .args(["fig9a", "--csv", dir.to_str().unwrap()])
        .output()
        .expect("spawn repro");
    assert!(out.status.success());
    let csv = std::fs::read_to_string(dir.join("fig9a.csv")).expect("csv written");
    assert!(csv.starts_with("t (s),"));
    assert!(csv.lines().count() > 5);
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn simrun_emits_a_valid_default_scenario_and_reruns_it() {
    let out = simrun()
        .args(["--emit-default-scenario"])
        .output()
        .expect("spawn simrun");
    assert!(out.status.success());
    let json = String::from_utf8(out.stdout).unwrap();
    assert!(json.contains("\"nodes\": 200"));

    // Round-trip: feed the emitted scenario back in (shrunk for speed).
    let shrunk = json
        .replace("\"nodes\": 200", "\"nodes\": 60")
        .replace("\"duration_s\": 100.0", "\"duration_s\": 8.0")
        .replace("\"pairs\": 10", "\"pairs\": 2");
    let path = std::env::temp_dir().join(format!("alert_scenario_{}.json", std::process::id()));
    std::fs::write(&path, shrunk).unwrap();
    let out = simrun()
        .args([
            "--protocol",
            "gpsr",
            "--scenario",
            path.to_str().unwrap(),
            "--seed",
            "3",
        ])
        .output()
        .expect("spawn simrun");
    let _ = std::fs::remove_file(&path);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("GPSR on 60 nodes"));
    assert!(text.contains("delivery"));
}

#[test]
fn simrun_guardrails_abort_with_structured_error_and_trace_marker() {
    let trace = std::env::temp_dir().join(format!("alert_abort_{}.jsonl", std::process::id()));
    let out = simrun()
        .args([
            "--protocol",
            "gpsr",
            "--nodes",
            "40",
            "--pairs",
            "2",
            "--duration",
            "10",
            "--seed",
            "3",
            "--max-events",
            "50",
            "--trace",
            trace.to_str().unwrap(),
        ])
        .output()
        .expect("spawn simrun");
    // Aborted runs are runtime failures (exit 1), not usage errors.
    assert_eq!(out.status.code(), Some(1));
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(
        err.contains("run aborted: event budget of 50 exhausted"),
        "stderr: {err}"
    );
    // The trace was still flushed and ends with the abort marker.
    let text = std::fs::read_to_string(&trace).expect("trace written");
    let _ = std::fs::remove_file(&trace);
    let last = text.lines().last().expect("trace non-empty");
    assert!(last.contains("\"ev\":\"run_aborted\""), "last line: {last}");
    assert!(
        last.contains("\"reason\":\"event_budget\""),
        "last line: {last}"
    );
}

/// Every tracequery subcommand over the committed fixtures must emit
/// exactly the committed golden bytes — the binary's own CSV assembly
/// (anonymity, rates) included, not just the library renderers.
#[test]
fn tracequery_output_matches_committed_goldens() {
    let trace = fixture("trace.jsonl");
    let series = fixture("series.jsonl");
    let cases: [(&[&str], &str); 9] = [
        (
            &["filter", &trace, "--node", "3", "--format", "csv"],
            "golden/filter_node3.csv",
        ),
        (
            &["filter", &trace, "--kind", "drop", "--format", "csv"],
            "golden/filter_drops.csv",
        ),
        (
            &["follow", &trace, "--packet", "0"],
            "golden/follow_packet0.jsonl",
        ),
        (&["windows", &trace, "--every", "5"], "golden/windows.csv"),
        (
            &["windows", &trace, "--every", "5", "--format", "json"],
            "golden/windows.json",
        ),
        (
            &["anonymity", &trace, "--every", "5"],
            "golden/anonymity.csv",
        ),
        (
            &["anonymity", &trace, "--every", "5", "--summary"],
            "golden/anonymity_summary.csv",
        ),
        (&["rates", &series], "golden/rates.csv"),
        (
            &["rates", &series, "--counter", "tx.frames"],
            "golden/rates_tx_frames.csv",
        ),
    ];
    for (args, golden) in cases {
        let out = tracequery().args(args).output().expect("spawn tracequery");
        assert!(
            out.status.success(),
            "{args:?}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let want = std::fs::read_to_string(fixture(golden)).expect("golden readable");
        assert_eq!(
            String::from_utf8(out.stdout).unwrap(),
            want,
            "{args:?} diverged from {golden}"
        );
    }
}

#[test]
fn tracequery_rejects_bad_input_and_unknown_flags() {
    let out = tracequery()
        .args(["filter", "/nonexistent/trace.jsonl"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));

    let out = tracequery()
        .args(["windows", &fixture("trace.jsonl"), "--bogus", "1"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8(out.stderr)
        .unwrap()
        .contains("unknown flag"));

    let out = tracequery()
        .args(["rates", &fixture("trace.jsonl")])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1), "a trace is not a timeseries");
}

#[test]
fn simrun_rejects_degenerate_budgets() {
    let out = simrun()
        .args(["--protocol", "gpsr", "--max-events", "0"])
        .output()
        .expect("spawn simrun");
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8(out.stderr)
        .unwrap()
        .contains("budget.max_events"));
}

#[test]
fn simrun_rejects_bad_protocol_and_bad_scenario() {
    let out = simrun().args(["--protocol", "ospf"]).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8(out.stderr)
        .unwrap()
        .contains("unknown protocol"));

    let path = std::env::temp_dir().join(format!("alert_bad_{}.json", std::process::id()));
    std::fs::write(&path, "{ not json").unwrap();
    let out = simrun()
        .args(["--scenario", path.to_str().unwrap()])
        .output()
        .unwrap();
    let _ = std::fs::remove_file(&path);
    assert!(!out.status.success());
    assert!(String::from_utf8(out.stderr)
        .unwrap()
        .contains("bad scenario"));
}

//! Dynamic pseudonyms (paper Section 2.2).
//!
//! Each node identifies itself by `SHA1(MAC address || timestamp)` instead
//! of its real MAC address. The timestamp is kept at 1-second precision and
//! the sub-second digits are *randomized* so an eavesdropper cannot
//! recompute the pseudonym by brute-forcing the clock. Pseudonyms expire
//! after a configurable period so long-lived observations cannot associate
//! a pseudonym with a node.

use crate::sha1::Sha1;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A node's pseudonymous identifier: a SHA-1 digest of MAC and randomized
/// timestamp, compressed to 64 bits for cheap hashing and comparison.
///
/// (The full 160-bit digest only reduces the *accidental* collision
/// probability, already negligible at 64 bits for network sizes of 10^3.)
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Pseudonym(pub u64);

impl fmt::Display for Pseudonym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{:016x}", self.0)
    }
}

/// A hardware MAC address (the identity the pseudonym hides).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MacAddress(pub [u8; 6]);

impl MacAddress {
    /// Deterministic test/ simulation MAC from a node index.
    pub fn from_index(index: u64) -> Self {
        let b = index.to_be_bytes();
        MacAddress([0x02, b[3], b[4], b[5], b[6], b[7]])
    }
}

/// Generates pseudonyms and tracks their expiry for one node.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PseudonymGenerator {
    mac: MacAddress,
    /// Pseudonym validity period in seconds. The paper notes the change
    /// frequency must balance routing stability against linkability.
    pub lifetime_s: f64,
    current: Pseudonym,
    issued_at: f64,
}

impl PseudonymGenerator {
    /// Creates a generator and issues the first pseudonym at time `now`.
    pub fn new<R: Rng + ?Sized>(mac: MacAddress, lifetime_s: f64, now: f64, rng: &mut R) -> Self {
        let current = compute_pseudonym(mac, now, rng);
        PseudonymGenerator {
            mac,
            lifetime_s,
            current,
            issued_at: now,
        }
    }

    /// The pseudonym valid at time `now`, rotating it first if the current
    /// one has expired. Returns `(pseudonym, rotated)`.
    pub fn current<R: Rng + ?Sized>(&mut self, now: f64, rng: &mut R) -> (Pseudonym, bool) {
        if now - self.issued_at >= self.lifetime_s {
            self.current = compute_pseudonym(self.mac, now, rng);
            self.issued_at = now;
            (self.current, true)
        } else {
            (self.current, false)
        }
    }

    /// Peeks at the current pseudonym without rotation.
    pub fn peek(&self) -> Pseudonym {
        self.current
    }

    /// Seconds until the current pseudonym expires.
    pub fn remaining(&self, now: f64) -> f64 {
        (self.issued_at + self.lifetime_s - now).max(0.0)
    }
}

/// Computes `SHA1(MAC || randomized timestamp)` per Section 2.2: whole
/// seconds are kept, and the sub-second digits are replaced by random
/// nanoseconds so the hash input cannot be reconstructed from a clock.
pub fn compute_pseudonym<R: Rng + ?Sized>(mac: MacAddress, now_s: f64, rng: &mut R) -> Pseudonym {
    let whole_seconds = now_s.floor() as u64;
    let random_nanos: u32 = rng.gen_range(0..1_000_000_000);
    let mut h = Sha1::new();
    h.update(&mac.0);
    h.update(&whole_seconds.to_be_bytes());
    h.update(&random_nanos.to_be_bytes());
    Pseudonym(h.finalize().prefix_u64())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::collections::HashSet;

    #[test]
    fn pseudonyms_hide_the_mac() {
        let mut rng = StdRng::seed_from_u64(1);
        let mac = MacAddress::from_index(7);
        let p = compute_pseudonym(mac, 100.0, &mut rng);
        // The pseudonym bytes never contain the MAC bytes verbatim.
        let raw = p.0.to_be_bytes();
        assert!(!raw.windows(4).any(|w| mac.0.windows(4).any(|m| m == w)));
    }

    #[test]
    fn same_second_different_randomization_differs() {
        let mut rng = StdRng::seed_from_u64(2);
        let mac = MacAddress::from_index(1);
        let a = compute_pseudonym(mac, 55.2, &mut rng);
        let b = compute_pseudonym(mac, 55.9, &mut rng);
        // Same whole second, but randomized nanoseconds almost surely differ.
        assert_ne!(a, b);
    }

    #[test]
    fn rotation_honors_lifetime() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut g = PseudonymGenerator::new(MacAddress::from_index(4), 10.0, 0.0, &mut rng);
        let first = g.peek();
        let (p, rotated) = g.current(5.0, &mut rng);
        assert_eq!(p, first);
        assert!(!rotated);
        assert_eq!(g.remaining(5.0), 5.0);
        let (p2, rotated2) = g.current(10.0, &mut rng);
        assert!(rotated2);
        assert_ne!(p2, first);
        // The clock of the new pseudonym restarts.
        assert_eq!(g.remaining(10.0), 10.0);
    }

    #[test]
    fn no_collisions_across_population() {
        // 1,000 nodes x 10 rotations: all pseudonyms distinct.
        let mut rng = StdRng::seed_from_u64(4);
        let mut seen = HashSet::new();
        for node in 0..1000u64 {
            let mac = MacAddress::from_index(node);
            for t in 0..10 {
                let p = compute_pseudonym(mac, t as f64 * 30.0, &mut rng);
                assert!(seen.insert(p), "collision at node {node} t {t}");
            }
        }
    }

    #[test]
    fn expired_remaining_clamps_to_zero() {
        let mut rng = StdRng::seed_from_u64(5);
        let g = PseudonymGenerator::new(MacAddress::from_index(9), 10.0, 0.0, &mut rng);
        assert_eq!(g.remaining(99.0), 0.0);
    }
}

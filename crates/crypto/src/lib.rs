//! # alert-crypto
//!
//! The cryptographic substrate of the ALERT reproduction:
//!
//! * [`sha1`] — SHA-1 from scratch (pseudonym hashing, Section 2.2);
//! * [`cipher`] — a functional SHA-1-CTR stream cipher standing in for the
//!   paper's AES symmetric data path (Section 2.5);
//! * [`aes`] — real AES-128 with CTR mode (FIPS-197 / SP 800-38A test
//!   vectors), for users who want bit-faithful AES framing;
//! * [`pubkey`] — functional textbook RSA over 64-bit moduli standing in
//!   for the paper's RSA (key wrapping, TTL and Bitmap encryption);
//! * [`pseudonym`] — dynamic pseudonym generation and rotation;
//! * [`cost`] — the latency cost model (Section 5.2) through which crypto
//!   strength actually enters the paper's evaluation.
//!
//! The ciphers here are *functional*, not secure: they really transform
//! bytes and really fail with the wrong key, which is what the simulation
//! needs, while production-grade security parameters are represented by
//! their measured latency in [`cost::CostModel`]. See DESIGN.md § 1.

//! ## Example: the paper's session-key handshake in miniature
//!
//! ```
//! use alert_crypto::{open, pk_decrypt, pk_encrypt, seal, KeyPair, SymmetricKey};
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! let mut rng = StdRng::seed_from_u64(7);
//! let destination = KeyPair::generate(&mut rng);
//! // S wraps a symmetric key with D's public key (Section 2.5)...
//! let k_s = SymmetricKey::random(&mut rng);
//! let wrapped = pk_encrypt(&destination.public, &k_s.0);
//! // ...and the data path is symmetric from then on.
//! let sealed = seal(&k_s, b"rendezvous at dawn", &mut rng);
//! let unwrapped = pk_decrypt(&destination.private, &wrapped).unwrap();
//! let k_at_d = SymmetricKey(unwrapped.try_into().unwrap());
//! assert_eq!(open(&k_at_d, &sealed), b"rendezvous at dawn");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aes;
pub mod cipher;
pub mod cost;
pub mod pseudonym;
pub mod pubkey;
pub mod sha1;

pub use aes::Aes128;
pub use cipher::{mac, open, seal, SealedBytes, SymmetricKey};
pub use cost::{CostModel, CryptoOps};
pub use pseudonym::{compute_pseudonym, MacAddress, Pseudonym, PseudonymGenerator};
pub use pubkey::{
    pk_decrypt, pk_encrypt, pk_sign, pk_verify, KeyPair, PkSealed, PrivateKey, PublicKey,
};
pub use sha1::{hmac_sha1, sha1, Digest, Sha1};

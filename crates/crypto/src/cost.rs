//! The crypto latency cost model (paper Section 5.2).
//!
//! The paper's latency evaluation charges the wall-clock cost of crypto on
//! a 1.8 GHz single-threaded CPU: "a typical symmetric encryption costs
//! several milliseconds while a public key encryption operation costs 2-3
//! hundred milliseconds". The comparison between ALERT (one symmetric
//! encryption per packet) and ALARM / AO2P (per-hop public-key work) hinges
//! entirely on these constants, so they are explicit, configurable inputs
//! to the simulation rather than buried magic numbers.

use serde::{Deserialize, Serialize};

/// Per-operation processing delays, in seconds of simulated node CPU time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// One symmetric encryption or decryption of a data packet (AES-class).
    pub symmetric_s: f64,
    /// One public-key encryption (RSA-class).
    pub pk_encrypt_s: f64,
    /// One public-key decryption / signing (RSA private-key op; typically
    /// the expensive direction).
    pub pk_decrypt_s: f64,
    /// One signature verification (RSA public-key op, cheap exponent).
    pub pk_verify_s: f64,
    /// One hash evaluation (pseudonym computation); negligible but nonzero.
    pub hash_s: f64,
}

impl CostModel {
    /// The paper's measured costs (Section 5.2): symmetric ≈ 3 ms,
    /// public-key ≈ 250 ms (encrypt) / 250 ms (decrypt), verify ≈ 15 ms,
    /// hash ≈ 10 µs.
    pub const PAPER_1_8GHZ: CostModel = CostModel {
        symmetric_s: 0.003,
        pk_encrypt_s: 0.250,
        pk_decrypt_s: 0.250,
        pk_verify_s: 0.015,
        hash_s: 0.000_01,
    };

    /// A zero-cost model: isolates pure routing latency from crypto cost
    /// (used in ablation benches).
    pub const FREE: CostModel = CostModel {
        symmetric_s: 0.0,
        pk_encrypt_s: 0.0,
        pk_decrypt_s: 0.0,
        pk_verify_s: 0.0,
        hash_s: 0.0,
    };

    /// Scales every cost by `factor` (e.g. to model a faster CPU).
    pub fn scaled(&self, factor: f64) -> CostModel {
        CostModel {
            symmetric_s: self.symmetric_s * factor,
            pk_encrypt_s: self.pk_encrypt_s * factor,
            pk_decrypt_s: self.pk_decrypt_s * factor,
            pk_verify_s: self.pk_verify_s * factor,
            hash_s: self.hash_s * factor,
        }
    }

    /// The paper's headline ratio: public-key work costs "hundreds of
    /// times" a symmetric operation \[26\].
    pub fn pk_to_symmetric_ratio(&self) -> f64 {
        if self.symmetric_s == 0.0 {
            f64::INFINITY
        } else {
            self.pk_encrypt_s / self.symmetric_s
        }
    }
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel::PAPER_1_8GHZ
    }
}

/// Running tally of crypto operations performed by a node or a whole run.
/// The simulator uses this to attribute latency and to report the
/// "computing cost" comparisons of Section 5.6.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CryptoOps {
    /// Symmetric encryptions + decryptions.
    pub symmetric: u64,
    /// Public-key encryptions.
    pub pk_encrypt: u64,
    /// Public-key decryptions / signatures.
    pub pk_decrypt: u64,
    /// Signature verifications.
    pub pk_verify: u64,
    /// Hash evaluations.
    pub hash: u64,
}

impl CryptoOps {
    /// Total simulated CPU seconds these operations cost under `model`.
    pub fn total_seconds(&self, model: &CostModel) -> f64 {
        self.symmetric as f64 * model.symmetric_s
            + self.pk_encrypt as f64 * model.pk_encrypt_s
            + self.pk_decrypt as f64 * model.pk_decrypt_s
            + self.pk_verify as f64 * model.pk_verify_s
            + self.hash as f64 * model.hash_s
    }

    /// Element-wise accumulation.
    pub fn add(&mut self, other: &CryptoOps) {
        self.symmetric += other.symmetric;
        self.pk_encrypt += other.pk_encrypt;
        self.pk_decrypt += other.pk_decrypt;
        self.pk_verify += other.pk_verify;
        self.hash += other.hash;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_model_has_pk_hundreds_of_times_symmetric() {
        let m = CostModel::PAPER_1_8GHZ;
        let ratio = m.pk_to_symmetric_ratio();
        assert!(
            (50.0..1000.0).contains(&ratio),
            "ratio {ratio} should be 'hundreds of times' per [26]"
        );
    }

    #[test]
    fn free_model_costs_nothing() {
        let ops = CryptoOps {
            symmetric: 100,
            pk_encrypt: 100,
            pk_decrypt: 100,
            pk_verify: 100,
            hash: 100,
        };
        assert_eq!(ops.total_seconds(&CostModel::FREE), 0.0);
    }

    #[test]
    fn total_seconds_is_linear() {
        let m = CostModel::PAPER_1_8GHZ;
        let ops = CryptoOps {
            symmetric: 2,
            pk_encrypt: 1,
            ..CryptoOps::default()
        };
        let expected = 2.0 * m.symmetric_s + m.pk_encrypt_s;
        assert!((ops.total_seconds(&m) - expected).abs() < 1e-12);
    }

    #[test]
    fn scaling_halves_costs() {
        let m = CostModel::PAPER_1_8GHZ.scaled(0.5);
        assert!((m.pk_encrypt_s - 0.125).abs() < 1e-12);
        assert!((m.symmetric_s - 0.0015).abs() < 1e-12);
    }

    #[test]
    fn add_accumulates() {
        let mut a = CryptoOps {
            symmetric: 1,
            ..CryptoOps::default()
        };
        let b = CryptoOps {
            symmetric: 2,
            pk_verify: 3,
            ..CryptoOps::default()
        };
        a.add(&b);
        assert_eq!(a.symmetric, 3);
        assert_eq!(a.pk_verify, 3);
    }
}

//! SHA-1, implemented from scratch (FIPS 180-1).
//!
//! The paper derives node pseudonyms with "a collision-resistant hash
//! function, such as SHA-1" (Section 2.2). SHA-1 is cryptographically
//! broken for adversarial collision resistance today, but we reproduce the
//! paper's construction faithfully; nothing in the simulation depends on
//! collision hardness beyond accidental-collision avoidance, for which
//! SHA-1's 160-bit output is ample.

/// A 160-bit SHA-1 digest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Digest(pub [u8; 20]);

impl Digest {
    /// Renders the digest as lowercase hex.
    pub fn to_hex(&self) -> String {
        let mut s = String::with_capacity(40);
        for b in self.0 {
            use std::fmt::Write;
            let _ = write!(s, "{b:02x}");
        }
        s
    }

    /// The first 8 bytes as a big-endian integer — a convenient short
    /// pseudonym form for hash-map keys.
    pub fn prefix_u64(&self) -> u64 {
        u64::from_be_bytes(self.0[..8].try_into().expect("digest has 20 bytes"))
    }
}

/// Streaming SHA-1 hasher.
#[derive(Debug, Clone)]
pub struct Sha1 {
    state: [u32; 5],
    len_bits: u64,
    buf: [u8; 64],
    buf_len: usize,
}

impl Default for Sha1 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha1 {
    /// Creates a hasher in the standard initial state.
    pub fn new() -> Self {
        Sha1 {
            state: [0x67452301, 0xEFCDAB89, 0x98BADCFE, 0x10325476, 0xC3D2E1F0],
            len_bits: 0,
            buf: [0u8; 64],
            buf_len: 0,
        }
    }

    /// Absorbs `data` into the hash state.
    pub fn update(&mut self, data: &[u8]) {
        self.len_bits = self.len_bits.wrapping_add((data.len() as u64) * 8);
        let mut rest = data;
        if self.buf_len > 0 {
            let take = rest.len().min(64 - self.buf_len);
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&rest[..take]);
            self.buf_len += take;
            rest = &rest[take..];
            if self.buf_len == 64 {
                let block = self.buf;
                self.compress(&block);
                self.buf_len = 0;
            }
        }
        while rest.len() >= 64 {
            let (block, tail) = rest.split_at(64);
            self.compress(block.try_into().expect("split_at(64)"));
            rest = tail;
        }
        if !rest.is_empty() {
            self.buf[..rest.len()].copy_from_slice(rest);
            self.buf_len = rest.len();
        }
    }

    /// Finishes the hash and returns the digest.
    pub fn finalize(mut self) -> Digest {
        let len_bits = self.len_bits;
        // Padding: 0x80, zeros, then the 64-bit big-endian bit length.
        self.update_padding_byte();
        while self.buf_len != 56 {
            self.update_zero_byte();
        }
        let mut len_block = [0u8; 8];
        len_block.copy_from_slice(&len_bits.to_be_bytes());
        self.buf[56..64].copy_from_slice(&len_block);
        let block = self.buf;
        self.compress(&block);

        let mut out = [0u8; 20];
        for (i, word) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
        }
        Digest(out)
    }

    fn update_padding_byte(&mut self) {
        self.buf[self.buf_len] = 0x80;
        self.buf_len += 1;
        if self.buf_len == 64 {
            let block = self.buf;
            self.compress(&block);
            self.buf_len = 0;
        }
    }

    fn update_zero_byte(&mut self) {
        self.buf[self.buf_len] = 0;
        self.buf_len += 1;
        if self.buf_len == 64 {
            let block = self.buf;
            self.compress(&block);
            self.buf_len = 0;
        }
    }

    fn compress(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 80];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes(chunk.try_into().expect("chunks_exact(4)"));
        }
        for i in 16..80 {
            w[i] = (w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16]).rotate_left(1);
        }
        let [mut a, mut b, mut c, mut d, mut e] = self.state;
        for (i, &wi) in w.iter().enumerate() {
            let (f, k) = match i {
                0..=19 => ((b & c) | ((!b) & d), 0x5A827999),
                20..=39 => (b ^ c ^ d, 0x6ED9EBA1),
                40..=59 => ((b & c) | (b & d) | (c & d), 0x8F1BBCDC),
                _ => (b ^ c ^ d, 0xCA62C1D6),
            };
            let tmp = a
                .rotate_left(5)
                .wrapping_add(f)
                .wrapping_add(e)
                .wrapping_add(k)
                .wrapping_add(wi);
            e = d;
            d = c;
            c = b.rotate_left(30);
            b = a;
            a = tmp;
        }
        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
        self.state[4] = self.state[4].wrapping_add(e);
    }
}

/// One-shot SHA-1 of `data`.
pub fn sha1(data: &[u8]) -> Digest {
    let mut h = Sha1::new();
    h.update(data);
    h.finalize()
}

/// HMAC-SHA1 (RFC 2104): the hardened keyed MAC, validated against the
/// RFC 2202 test vectors. The simulator's fast path uses the cheaper
/// prefix-MAC in [`crate::cipher::mac`]; this is the construction a
/// deployment would use.
pub fn hmac_sha1(key: &[u8], data: &[u8]) -> Digest {
    const BLOCK: usize = 64;
    let mut key_block = [0u8; BLOCK];
    if key.len() > BLOCK {
        key_block[..20].copy_from_slice(&sha1(key).0);
    } else {
        key_block[..key.len()].copy_from_slice(key);
    }
    let mut inner = Sha1::new();
    let ipad: Vec<u8> = key_block.iter().map(|b| b ^ 0x36).collect();
    inner.update(&ipad);
    inner.update(data);
    let inner_digest = inner.finalize();
    let mut outer = Sha1::new();
    let opad: Vec<u8> = key_block.iter().map(|b| b ^ 0x5c).collect();
    outer.update(&opad);
    outer.update(&inner_digest.0);
    outer.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    // FIPS 180-1 / RFC 3174 test vectors.
    #[test]
    fn empty_string() {
        assert_eq!(
            sha1(b"").to_hex(),
            "da39a3ee5e6b4b0d3255bfef95601890afd80709"
        );
    }

    #[test]
    fn abc() {
        assert_eq!(
            sha1(b"abc").to_hex(),
            "a9993e364706816aba3e25717850c26c9cd0d89d"
        );
    }

    #[test]
    fn two_block_message() {
        assert_eq!(
            sha1(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq").to_hex(),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1"
        );
    }

    #[test]
    fn million_a() {
        let mut h = Sha1::new();
        let chunk = [b'a'; 1000];
        for _ in 0..1000 {
            h.update(&chunk);
        }
        assert_eq!(
            h.finalize().to_hex(),
            "34aa973cd4c4daa4f61eeb2bdbad27316534016f"
        );
    }

    #[test]
    fn incremental_equals_oneshot() {
        let data = b"The quick brown fox jumps over the lazy dog";
        let mut h = Sha1::new();
        for chunk in data.chunks(7) {
            h.update(chunk);
        }
        assert_eq!(h.finalize(), sha1(data));
        assert_eq!(
            sha1(data).to_hex(),
            "2fd4e1c67a2d28fced849ee1bb76e7391b93eb12"
        );
    }

    #[test]
    fn boundary_lengths() {
        // Exercise padding around the 55/56/63/64-byte block boundaries.
        for len in [0usize, 1, 54, 55, 56, 57, 63, 64, 65, 127, 128, 129] {
            let data = vec![0xA5u8; len];
            let once = sha1(&data);
            let mut h = Sha1::new();
            for b in &data {
                h.update(std::slice::from_ref(b));
            }
            assert_eq!(h.finalize(), once, "len {len}");
        }
    }

    /// RFC 2202 test cases 1-3 and 6 (short key, "Jefe", 0xaa key, long key).
    #[test]
    fn hmac_rfc2202_vectors() {
        assert_eq!(
            hmac_sha1(&[0x0b; 20], b"Hi There").to_hex(),
            "b617318655057264e28bc0b6fb378c8ef146be00"
        );
        assert_eq!(
            hmac_sha1(b"Jefe", b"what do ya want for nothing?").to_hex(),
            "effcdf6ae5eb2fa2d27416d5f184df9c259a7c79"
        );
        assert_eq!(
            hmac_sha1(&[0xaa; 20], &[0xdd; 50]).to_hex(),
            "125d7342b9ac11cd91a39af48aa17b4f63f175d3"
        );
        let long_key = [0xaa; 80];
        assert_eq!(
            hmac_sha1(
                &long_key,
                b"Test Using Larger Than Block-Size Key - Hash Key First"
            )
            .to_hex(),
            "aa4ae5e15272d00e95705637ce8a3b55ed402112"
        );
    }

    #[test]
    fn hmac_key_sensitivity() {
        let a = hmac_sha1(b"key-a", b"data");
        let b = hmac_sha1(b"key-b", b"data");
        assert_ne!(a, b);
        assert_eq!(hmac_sha1(b"key-a", b"data"), a);
    }

    #[test]
    fn prefix_u64_is_big_endian_prefix() {
        let d = sha1(b"abc");
        assert_eq!(d.prefix_u64(), 0xa9993e364706816a);
    }

    #[test]
    fn digests_differ_on_single_bit_flip() {
        let a = sha1(b"pseudonym-input-0");
        let b = sha1(b"pseudonym-input-1");
        assert_ne!(a, b);
    }
}

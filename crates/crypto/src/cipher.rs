//! Functional symmetric encryption: a SHA-1-based stream cipher.
//!
//! The paper uses AES for the symmetric data path (Section 5.2). We stand
//! in a keystream cipher built from our from-scratch SHA-1 in counter mode:
//! `keystream_block(i) = SHA1(key || nonce || i)`. This is *functionally*
//! a real cipher (ciphertext is unintelligible without the key, decryption
//! round-trips, tampering is detectable via the MAC helper) while keeping
//! the workspace dependency-free. It is NOT a security claim — the
//! simulation charges the latency of real AES via the cost model instead.

use crate::sha1::{sha1, Sha1};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A 128-bit symmetric key (the paper's `K_s`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SymmetricKey(pub [u8; 16]);

impl SymmetricKey {
    /// Draws a uniformly random key.
    pub fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        let mut k = [0u8; 16];
        rng.fill(&mut k);
        SymmetricKey(k)
    }

    /// Derives a key deterministically from a label (tests, fixtures).
    pub fn derive(label: &[u8]) -> Self {
        let d = sha1(label);
        let mut k = [0u8; 16];
        k.copy_from_slice(&d.0[..16]);
        SymmetricKey(k)
    }
}

/// A sealed message: nonce plus ciphertext.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SealedBytes {
    /// Per-message nonce; never reuse with the same key.
    pub nonce: [u8; 8],
    /// XOR-keystream ciphertext, same length as the plaintext.
    pub ciphertext: Vec<u8>,
}

impl SealedBytes {
    /// Total wire size contribution in bytes.
    pub fn wire_len(&self) -> usize {
        8 + self.ciphertext.len()
    }
}

fn keystream_block(key: &SymmetricKey, nonce: &[u8; 8], counter: u64) -> [u8; 20] {
    let mut h = Sha1::new();
    h.update(&key.0);
    h.update(nonce);
    h.update(&counter.to_be_bytes());
    h.finalize().0
}

fn apply_keystream(key: &SymmetricKey, nonce: &[u8; 8], data: &mut [u8]) {
    for (i, chunk) in data.chunks_mut(20).enumerate() {
        let ks = keystream_block(key, nonce, i as u64);
        for (b, k) in chunk.iter_mut().zip(ks.iter()) {
            *b ^= k;
        }
    }
}

/// Encrypts `plaintext` under `key` with a random nonce.
pub fn seal<R: Rng + ?Sized>(key: &SymmetricKey, plaintext: &[u8], rng: &mut R) -> SealedBytes {
    let mut nonce = [0u8; 8];
    rng.fill(&mut nonce);
    let mut ciphertext = plaintext.to_vec();
    apply_keystream(key, &nonce, &mut ciphertext);
    SealedBytes { nonce, ciphertext }
}

/// Decrypts a sealed message. Stream ciphers cannot fail structurally, so
/// this always returns the XOR inverse; pair with [`mac`] when integrity
/// matters.
pub fn open(key: &SymmetricKey, sealed: &SealedBytes) -> Vec<u8> {
    let mut plaintext = sealed.ciphertext.clone();
    apply_keystream(key, &sealed.nonce, &mut plaintext);
    plaintext
}

/// Keyed message authentication tag: `SHA1(key || data)` truncated to
/// 8 bytes. (HMAC would be the hardened construction; the length-extension
/// weakness of plain keyed hashing is irrelevant to the simulation.)
pub fn mac(key: &SymmetricKey, data: &[u8]) -> [u8; 8] {
    let mut h = Sha1::new();
    h.update(&key.0);
    h.update(data);
    let d = h.finalize();
    d.0[..8].try_into().expect("digest has 20 bytes")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn roundtrip() {
        let mut rng = StdRng::seed_from_u64(1);
        let key = SymmetricKey::random(&mut rng);
        let msg = b"anonymous location-based efficient routing".to_vec();
        let sealed = seal(&key, &msg, &mut rng);
        assert_ne!(sealed.ciphertext, msg, "ciphertext must differ");
        assert_eq!(open(&key, &sealed), msg);
    }

    #[test]
    fn roundtrip_empty_and_long() {
        let mut rng = StdRng::seed_from_u64(2);
        let key = SymmetricKey::random(&mut rng);
        for len in [0usize, 1, 19, 20, 21, 512, 4096] {
            let msg: Vec<u8> = (0..len).map(|i| (i % 251) as u8).collect();
            let sealed = seal(&key, &msg, &mut rng);
            assert_eq!(open(&key, &sealed), msg, "len {len}");
        }
    }

    #[test]
    fn wrong_key_garbles() {
        let mut rng = StdRng::seed_from_u64(3);
        let k1 = SymmetricKey::random(&mut rng);
        let k2 = SymmetricKey::random(&mut rng);
        let msg = vec![7u8; 64];
        let sealed = seal(&k1, &msg, &mut rng);
        assert_ne!(open(&k2, &sealed), msg);
    }

    #[test]
    fn nonce_uniqueness_changes_ciphertext() {
        let mut rng = StdRng::seed_from_u64(4);
        let key = SymmetricKey::random(&mut rng);
        let msg = vec![0u8; 32];
        let s1 = seal(&key, &msg, &mut rng);
        let s2 = seal(&key, &msg, &mut rng);
        assert_ne!(s1.nonce, s2.nonce);
        assert_ne!(s1.ciphertext, s2.ciphertext);
    }

    #[test]
    fn mac_detects_tamper() {
        let key = SymmetricKey::derive(b"mac-key");
        let data = b"packet payload";
        let tag = mac(&key, data);
        assert_eq!(tag, mac(&key, data));
        assert_ne!(tag, mac(&key, b"packet paylo4d"));
        assert_ne!(tag, mac(&SymmetricKey::derive(b"other"), data));
    }

    #[test]
    fn derive_is_deterministic() {
        assert_eq!(SymmetricKey::derive(b"x"), SymmetricKey::derive(b"x"));
        assert_ne!(SymmetricKey::derive(b"x"), SymmetricKey::derive(b"y"));
    }

    #[test]
    fn wire_len_accounts_for_nonce() {
        let mut rng = StdRng::seed_from_u64(5);
        let key = SymmetricKey::random(&mut rng);
        let sealed = seal(&key, &[0u8; 100], &mut rng);
        assert_eq!(sealed.wire_len(), 108);
    }
}

//! Functional public-key encryption: schoolbook RSA over 64-bit moduli.
//!
//! The paper uses RSA for the public-key operations (wrapping `K_s` with
//! the destination's public key, encrypting the TTL with a relay's public
//! key, encrypting the Bitmap — Sections 2.5, 2.6, 3.3) and measures RSA
//! at 200–300 ms per operation on a 1.8 GHz CPU (Section 5.2).
//!
//! We implement real textbook RSA with 32-bit primes: key generation
//! (Miller–Rabin), encryption/decryption by modular exponentiation, and
//! blockwise payload handling. A 64-bit modulus is factorable in
//! microseconds, so this is functional-but-toy by construction; the
//! *latency* of production RSA is charged separately through
//! [`crate::cost::CostModel`], which is the only way crypto strength enters
//! the paper's evaluation.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// RSA public key `(n, e)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PublicKey {
    /// Modulus `n = p * q`, a 64-bit semiprime.
    pub n: u64,
    /// Public exponent (65537, or 3 for tiny moduli).
    pub e: u64,
}

/// RSA private key `(n, d)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PrivateKey {
    /// Modulus, identical to the public key's.
    pub n: u64,
    /// Private exponent.
    pub d: u64,
}

/// A public/private key pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct KeyPair {
    /// The shareable half.
    pub public: PublicKey,
    /// The secret half.
    pub private: PrivateKey,
}

/// Modular multiplication without overflow (via u128).
fn mul_mod(a: u64, b: u64, m: u64) -> u64 {
    ((a as u128 * b as u128) % m as u128) as u64
}

/// Modular exponentiation by squaring.
pub fn pow_mod(mut base: u64, mut exp: u64, modulus: u64) -> u64 {
    assert!(modulus > 1, "modulus must exceed 1");
    let mut acc = 1u64;
    base %= modulus;
    while exp > 0 {
        if exp & 1 == 1 {
            acc = mul_mod(acc, base, modulus);
        }
        base = mul_mod(base, base, modulus);
        exp >>= 1;
    }
    acc
}

/// Deterministic Miller–Rabin, exact for all `u64` with this witness set.
pub fn is_prime(n: u64) -> bool {
    if n < 2 {
        return false;
    }
    for p in [2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
        if n == p {
            return true;
        }
        if n.is_multiple_of(p) {
            return false;
        }
    }
    let mut d = n - 1;
    let mut r = 0u32;
    while d.is_multiple_of(2) {
        d /= 2;
        r += 1;
    }
    'witness: for a in [2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
        let mut x = pow_mod(a, d, n);
        if x == 1 || x == n - 1 {
            continue;
        }
        for _ in 0..r - 1 {
            x = mul_mod(x, x, n);
            if x == n - 1 {
                continue 'witness;
            }
        }
        return false;
    }
    true
}

/// Extended Euclid; returns `(g, x)` with `a*x ≡ g (mod m)`.
fn mod_inverse(a: u64, m: u64) -> Option<u64> {
    let (mut old_r, mut r) = (a as i128, m as i128);
    let (mut old_s, mut s) = (1i128, 0i128);
    while r != 0 {
        let q = old_r / r;
        (old_r, r) = (r, old_r - q * r);
        (old_s, s) = (s, old_s - q * s);
    }
    if old_r != 1 {
        return None;
    }
    let mut x = old_s % m as i128;
    if x < 0 {
        x += m as i128;
    }
    Some(x as u64)
}

fn random_prime_in<R: Rng + ?Sized>(rng: &mut R, lo: u64, hi: u64) -> u64 {
    loop {
        let candidate = rng.gen_range(lo..hi) | 1;
        if is_prime(candidate) {
            return candidate;
        }
    }
}

impl KeyPair {
    /// Generates a key pair with two random 31-bit primes.
    pub fn generate<R: Rng + ?Sized>(rng: &mut R) -> Self {
        loop {
            let p = random_prime_in(rng, 1 << 30, 1 << 31);
            let q = random_prime_in(rng, 1 << 30, 1 << 31);
            if p == q {
                continue;
            }
            let n = p * q;
            let phi = (p - 1) * (q - 1);
            let e = 65537u64;
            if phi.is_multiple_of(e) {
                continue;
            }
            if let Some(d) = mod_inverse(e, phi) {
                return KeyPair {
                    public: PublicKey { n, e },
                    private: PrivateKey { n, d },
                };
            }
        }
    }
}

/// A blockwise public-key ciphertext.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PkSealed {
    /// Original plaintext length (the block coding pads to 4-byte blocks).
    pub plain_len: u32,
    /// One u64 ciphertext word per 4-byte plaintext block.
    pub blocks: Vec<u64>,
}

impl PkSealed {
    /// Wire size: 4-byte length header plus 8 bytes per block.
    pub fn wire_len(&self) -> usize {
        4 + self.blocks.len() * 8
    }
}

/// Encrypts arbitrary bytes under `pk`, 4 plaintext bytes per block
/// (guaranteed below the 2^60+ modulus).
pub fn pk_encrypt(pk: &PublicKey, plaintext: &[u8]) -> PkSealed {
    let blocks = plaintext
        .chunks(4)
        .map(|chunk| {
            let mut word = [0u8; 4];
            word[..chunk.len()].copy_from_slice(chunk);
            pow_mod(u64::from(u32::from_be_bytes(word)), pk.e, pk.n)
        })
        .collect();
    PkSealed {
        plain_len: plaintext.len() as u32,
        blocks,
    }
}

/// Decrypts a blockwise ciphertext. Returns `None` when a decrypted block
/// exceeds the 32-bit plaintext domain — the tell-tale of the wrong key.
pub fn pk_decrypt(sk: &PrivateKey, sealed: &PkSealed) -> Option<Vec<u8>> {
    let mut out = Vec::with_capacity(sealed.blocks.len() * 4);
    for &b in &sealed.blocks {
        let m = pow_mod(b, sk.d, sk.n);
        if m > u64::from(u32::MAX) {
            return None;
        }
        out.extend_from_slice(&(m as u32).to_be_bytes());
    }
    out.truncate(sealed.plain_len as usize);
    Some(out)
}

/// Signs `digest8` (an 8-byte message digest) with the private key:
/// split into two blocks, "decrypt" each.
pub fn pk_sign(sk: &PrivateKey, digest8: &[u8; 8]) -> [u64; 2] {
    let lo = u64::from(u32::from_be_bytes(
        digest8[..4].try_into().expect("8 bytes"),
    ));
    let hi = u64::from(u32::from_be_bytes(
        digest8[4..].try_into().expect("8 bytes"),
    ));
    [pow_mod(lo, sk.d, sk.n), pow_mod(hi, sk.d, sk.n)]
}

/// Verifies a signature produced by [`pk_sign`].
pub fn pk_verify(pk: &PublicKey, digest8: &[u8; 8], sig: &[u64; 2]) -> bool {
    let lo = u64::from(u32::from_be_bytes(
        digest8[..4].try_into().expect("8 bytes"),
    ));
    let hi = u64::from(u32::from_be_bytes(
        digest8[4..].try_into().expect("8 bytes"),
    ));
    pow_mod(sig[0], pk.e, pk.n) == lo && pow_mod(sig[1], pk.e, pk.n) == hi
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn pow_mod_small_cases() {
        assert_eq!(pow_mod(2, 10, 1000), 24);
        assert_eq!(pow_mod(3, 0, 7), 1);
        assert_eq!(pow_mod(0, 5, 7), 0);
        // (u64::MAX - 1) ≡ 57 (mod u64::MAX - 58); 57^2 = 3249. Exercises
        // the u128 widening path with operands near the u64 boundary.
        assert_eq!(pow_mod(u64::MAX - 1, 2, u64::MAX - 58), 3249);
    }

    #[test]
    fn primality_known_values() {
        for p in [2u64, 3, 5, 7, 97, 65537, 2_147_483_647] {
            assert!(is_prime(p), "{p} is prime");
        }
        for c in [0u64, 1, 4, 100, 65535, 2_147_483_649, 3_215_031_751] {
            assert!(!is_prime(c), "{c} is composite");
        }
    }

    #[test]
    fn keygen_produces_working_pair() {
        let mut rng = StdRng::seed_from_u64(11);
        let kp = KeyPair::generate(&mut rng);
        assert!(kp.public.n > 1 << 60);
        // m^(ed) = m for a few sample messages.
        for m in [0u64, 1, 42, 0xFFFF_FFFF] {
            let c = pow_mod(m, kp.public.e, kp.public.n);
            assert_eq!(pow_mod(c, kp.private.d, kp.private.n), m);
        }
    }

    #[test]
    fn encrypt_decrypt_roundtrip() {
        let mut rng = StdRng::seed_from_u64(12);
        let kp = KeyPair::generate(&mut rng);
        for len in [0usize, 1, 3, 4, 5, 16, 100] {
            let msg: Vec<u8> = (0..len).map(|i| (i * 37 % 256) as u8).collect();
            let sealed = pk_encrypt(&kp.public, &msg);
            assert_eq!(pk_decrypt(&kp.private, &sealed).unwrap(), msg, "len {len}");
        }
    }

    #[test]
    fn wrong_key_usually_fails_or_garbles() {
        let mut rng = StdRng::seed_from_u64(13);
        let kp1 = KeyPair::generate(&mut rng);
        let kp2 = KeyPair::generate(&mut rng);
        let msg = b"temporary destination".to_vec();
        let sealed = pk_encrypt(&kp1.public, &msg);
        match pk_decrypt(&kp2.private, &sealed) {
            None => {}
            Some(garbled) => assert_ne!(garbled, msg),
        }
    }

    #[test]
    fn sign_verify() {
        let mut rng = StdRng::seed_from_u64(14);
        let kp = KeyPair::generate(&mut rng);
        let digest = [1u8, 2, 3, 4, 5, 6, 7, 8];
        let sig = pk_sign(&kp.private, &digest);
        assert!(pk_verify(&kp.public, &digest, &sig));
        let mut tampered = digest;
        tampered[0] ^= 1;
        assert!(!pk_verify(&kp.public, &tampered, &sig));
        let other = KeyPair::generate(&mut rng);
        assert!(!pk_verify(&other.public, &digest, &sig));
    }

    #[test]
    fn wire_len_matches_blocks() {
        let mut rng = StdRng::seed_from_u64(15);
        let kp = KeyPair::generate(&mut rng);
        let sealed = pk_encrypt(&kp.public, &[0u8; 10]); // 3 blocks
        assert_eq!(sealed.blocks.len(), 3);
        assert_eq!(sealed.wire_len(), 4 + 24);
    }
}

//! AES-128 (FIPS-197), implemented from scratch, plus CTR mode.
//!
//! The paper's symmetric data path is AES (Section 5.2). The default
//! simulation cipher is the cheaper SHA-1 keystream in [`crate::cipher`];
//! this module provides the real thing for users who want bit-faithful
//! AES framing, validated against the FIPS-197 and NIST SP 800-38A test
//! vectors.
//!
//! Implementation notes: 8-bit table-free S-box computation is replaced by
//! a precomputed S-box table (the standard practice); MixColumns uses
//! xtime chains. This is a straightforward, readable implementation — not
//! constant-time, which is irrelevant inside a simulator (see the crate
//! docs' security note).

use crate::cipher::SymmetricKey;

/// The AES S-box (FIPS-197 Fig. 7).
const SBOX: [u8; 256] = [
    0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67, 0x2b, 0xfe, 0xd7, 0xab, 0x76,
    0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0, 0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0,
    0xb7, 0xfd, 0x93, 0x26, 0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1, 0x71, 0xd8, 0x31, 0x15,
    0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a, 0x07, 0x12, 0x80, 0xe2, 0xeb, 0x27, 0xb2, 0x75,
    0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0, 0x52, 0x3b, 0xd6, 0xb3, 0x29, 0xe3, 0x2f, 0x84,
    0x53, 0xd1, 0x00, 0xed, 0x20, 0xfc, 0xb1, 0x5b, 0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf,
    0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45, 0xf9, 0x02, 0x7f, 0x50, 0x3c, 0x9f, 0xa8,
    0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5, 0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2,
    0xcd, 0x0c, 0x13, 0xec, 0x5f, 0x97, 0x44, 0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73,
    0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88, 0x46, 0xee, 0xb8, 0x14, 0xde, 0x5e, 0x0b, 0xdb,
    0xe0, 0x32, 0x3a, 0x0a, 0x49, 0x06, 0x24, 0x5c, 0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79,
    0xe7, 0xc8, 0x37, 0x6d, 0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08,
    0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6, 0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f, 0x4b, 0xbd, 0x8b, 0x8a,
    0x70, 0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e, 0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e,
    0xe1, 0xf8, 0x98, 0x11, 0x69, 0xd9, 0x8e, 0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
    0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f, 0xb0, 0x54, 0xbb, 0x16,
];

/// The inverse S-box (FIPS-197 Fig. 14).
const INV_SBOX: [u8; 256] = {
    let mut inv = [0u8; 256];
    let mut i = 0;
    while i < 256 {
        inv[SBOX[i] as usize] = i as u8;
        i += 1;
    }
    inv
};

/// Round constants for key expansion.
const RCON: [u8; 10] = [0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1b, 0x36];

/// Multiply by x in GF(2^8) with the AES polynomial 0x11b.
#[inline]
fn xtime(a: u8) -> u8 {
    (a << 1) ^ (((a >> 7) & 1) * 0x1b)
}

/// General GF(2^8) multiplication (used by InvMixColumns).
fn gmul(mut a: u8, mut b: u8) -> u8 {
    let mut acc = 0u8;
    while b != 0 {
        if b & 1 == 1 {
            acc ^= a;
        }
        a = xtime(a);
        b >>= 1;
    }
    acc
}

/// An expanded AES-128 key schedule (11 round keys).
#[derive(Debug, Clone)]
pub struct Aes128 {
    round_keys: [[u8; 16]; 11],
}

impl Aes128 {
    /// Expands a 128-bit key (FIPS-197 §5.2).
    pub fn new(key: &[u8; 16]) -> Self {
        let mut w = [[0u8; 4]; 44];
        for i in 0..4 {
            w[i].copy_from_slice(&key[i * 4..i * 4 + 4]);
        }
        for i in 4..44 {
            let mut temp = w[i - 1];
            if i % 4 == 0 {
                temp.rotate_left(1); // RotWord
                for b in &mut temp {
                    *b = SBOX[*b as usize]; // SubWord
                }
                temp[0] ^= RCON[i / 4 - 1];
            }
            for j in 0..4 {
                w[i][j] = w[i - 4][j] ^ temp[j];
            }
        }
        let mut round_keys = [[0u8; 16]; 11];
        for (r, rk) in round_keys.iter_mut().enumerate() {
            for c in 0..4 {
                rk[c * 4..c * 4 + 4].copy_from_slice(&w[r * 4 + c]);
            }
        }
        Aes128 { round_keys }
    }

    /// Derives the schedule from the simulator's [`SymmetricKey`].
    pub fn from_key(key: &SymmetricKey) -> Self {
        Aes128::new(&key.0)
    }

    fn add_round_key(state: &mut [u8; 16], rk: &[u8; 16]) {
        for i in 0..16 {
            state[i] ^= rk[i];
        }
    }

    fn sub_bytes(state: &mut [u8; 16]) {
        for b in state.iter_mut() {
            *b = SBOX[*b as usize];
        }
    }

    fn inv_sub_bytes(state: &mut [u8; 16]) {
        for b in state.iter_mut() {
            *b = INV_SBOX[*b as usize];
        }
    }

    /// ShiftRows on the column-major state (state[r + 4c]).
    fn shift_rows(state: &mut [u8; 16]) {
        for r in 1..4 {
            let row = [state[r], state[r + 4], state[r + 8], state[r + 12]];
            for c in 0..4 {
                state[r + 4 * c] = row[(c + r) % 4];
            }
        }
    }

    fn inv_shift_rows(state: &mut [u8; 16]) {
        for r in 1..4 {
            let row = [state[r], state[r + 4], state[r + 8], state[r + 12]];
            for c in 0..4 {
                state[r + 4 * c] = row[(c + 4 - r) % 4];
            }
        }
    }

    fn mix_columns(state: &mut [u8; 16]) {
        for c in 0..4 {
            let col = &mut state[4 * c..4 * c + 4];
            let (a0, a1, a2, a3) = (col[0], col[1], col[2], col[3]);
            col[0] = xtime(a0) ^ (xtime(a1) ^ a1) ^ a2 ^ a3;
            col[1] = a0 ^ xtime(a1) ^ (xtime(a2) ^ a2) ^ a3;
            col[2] = a0 ^ a1 ^ xtime(a2) ^ (xtime(a3) ^ a3);
            col[3] = (xtime(a0) ^ a0) ^ a1 ^ a2 ^ xtime(a3);
        }
    }

    fn inv_mix_columns(state: &mut [u8; 16]) {
        for c in 0..4 {
            let col = &mut state[4 * c..4 * c + 4];
            let (a0, a1, a2, a3) = (col[0], col[1], col[2], col[3]);
            col[0] = gmul(a0, 0x0e) ^ gmul(a1, 0x0b) ^ gmul(a2, 0x0d) ^ gmul(a3, 0x09);
            col[1] = gmul(a0, 0x09) ^ gmul(a1, 0x0e) ^ gmul(a2, 0x0b) ^ gmul(a3, 0x0d);
            col[2] = gmul(a0, 0x0d) ^ gmul(a1, 0x09) ^ gmul(a2, 0x0e) ^ gmul(a3, 0x0b);
            col[3] = gmul(a0, 0x0b) ^ gmul(a1, 0x0d) ^ gmul(a2, 0x09) ^ gmul(a3, 0x0e);
        }
    }

    /// Encrypts one 16-byte block in place.
    pub fn encrypt_block(&self, block: &mut [u8; 16]) {
        Self::add_round_key(block, &self.round_keys[0]);
        for round in 1..10 {
            Self::sub_bytes(block);
            Self::shift_rows(block);
            Self::mix_columns(block);
            Self::add_round_key(block, &self.round_keys[round]);
        }
        Self::sub_bytes(block);
        Self::shift_rows(block);
        Self::add_round_key(block, &self.round_keys[10]);
    }

    /// Decrypts one 16-byte block in place.
    pub fn decrypt_block(&self, block: &mut [u8; 16]) {
        Self::add_round_key(block, &self.round_keys[10]);
        Self::inv_shift_rows(block);
        Self::inv_sub_bytes(block);
        for round in (1..10).rev() {
            Self::add_round_key(block, &self.round_keys[round]);
            Self::inv_mix_columns(block);
            Self::inv_shift_rows(block);
            Self::inv_sub_bytes(block);
        }
        Self::add_round_key(block, &self.round_keys[0]);
    }

    /// CTR-mode keystream application (encrypt == decrypt): XORs the
    /// keystream for (`nonce`, counter…) into `data` in place
    /// (SP 800-38A §6.5 with a 64-bit nonce ‖ 64-bit counter block).
    pub fn ctr_apply(&self, nonce: &[u8; 8], data: &mut [u8]) {
        for (i, chunk) in data.chunks_mut(16).enumerate() {
            let mut block = [0u8; 16];
            block[..8].copy_from_slice(nonce);
            block[8..].copy_from_slice(&(i as u64).to_be_bytes());
            self.encrypt_block(&mut block);
            for (b, k) in chunk.iter_mut().zip(block.iter()) {
                *b ^= k;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(s: &str) -> Vec<u8> {
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    /// FIPS-197 Appendix B: the worked example.
    #[test]
    fn fips197_appendix_b() {
        let key: [u8; 16] = hex("2b7e151628aed2a6abf7158809cf4f3c").try_into().unwrap();
        let aes = Aes128::new(&key);
        let mut block: [u8; 16] = hex("3243f6a8885a308d313198a2e0370734").try_into().unwrap();
        aes.encrypt_block(&mut block);
        assert_eq!(block.to_vec(), hex("3925841d02dc09fbdc118597196a0b32"));
        aes.decrypt_block(&mut block);
        assert_eq!(block.to_vec(), hex("3243f6a8885a308d313198a2e0370734"));
    }

    /// FIPS-197 Appendix C.1: AES-128 known-answer test.
    #[test]
    fn fips197_appendix_c1() {
        let key: [u8; 16] = hex("000102030405060708090a0b0c0d0e0f").try_into().unwrap();
        let aes = Aes128::new(&key);
        let mut block: [u8; 16] = hex("00112233445566778899aabbccddeeff").try_into().unwrap();
        aes.encrypt_block(&mut block);
        assert_eq!(block.to_vec(), hex("69c4e0d86a7b0430d8cdb78070b4c55a"));
    }

    /// NIST SP 800-38A F.1.1: ECB-AES128 encrypt vectors (all four blocks).
    #[test]
    fn sp800_38a_ecb_vectors() {
        let key: [u8; 16] = hex("2b7e151628aed2a6abf7158809cf4f3c").try_into().unwrap();
        let aes = Aes128::new(&key);
        let cases = [
            (
                "6bc1bee22e409f96e93d7e117393172a",
                "3ad77bb40d7a3660a89ecaf32466ef97",
            ),
            (
                "ae2d8a571e03ac9c9eb76fac45af8e51",
                "f5d3d58503b9699de785895a96fdbaaf",
            ),
            (
                "30c81c46a35ce411e5fbc1191a0a52ef",
                "43b1cd7f598ece23881b00e3ed030688",
            ),
            (
                "f69f2445df4f9b17ad2b417be66c3710",
                "7b0c785e27e8ad3f8223207104725dd4",
            ),
        ];
        for (pt, ct) in cases {
            let mut block: [u8; 16] = hex(pt).try_into().unwrap();
            aes.encrypt_block(&mut block);
            assert_eq!(block.to_vec(), hex(ct), "plaintext {pt}");
            aes.decrypt_block(&mut block);
            assert_eq!(block.to_vec(), hex(pt));
        }
    }

    #[test]
    fn ctr_roundtrip_arbitrary_lengths() {
        let aes = Aes128::new(&[7u8; 16]);
        for len in [0usize, 1, 15, 16, 17, 100, 512] {
            let original: Vec<u8> = (0..len).map(|i| (i * 13 % 256) as u8).collect();
            let mut data = original.clone();
            aes.ctr_apply(&[1, 2, 3, 4, 5, 6, 7, 8], &mut data);
            if len > 0 {
                assert_ne!(data, original, "len {len}");
            }
            aes.ctr_apply(&[1, 2, 3, 4, 5, 6, 7, 8], &mut data);
            assert_eq!(data, original, "len {len}");
        }
    }

    #[test]
    fn ctr_nonce_separation() {
        let aes = Aes128::new(&[9u8; 16]);
        let mut a = vec![0u8; 32];
        let mut b = vec![0u8; 32];
        aes.ctr_apply(&[0; 8], &mut a);
        aes.ctr_apply(&[1, 0, 0, 0, 0, 0, 0, 0], &mut b);
        assert_ne!(a, b, "different nonces must give different keystreams");
    }

    #[test]
    fn inv_sbox_is_inverse() {
        for i in 0..256 {
            assert_eq!(INV_SBOX[SBOX[i] as usize] as usize, i);
            assert_eq!(SBOX[INV_SBOX[i] as usize] as usize, i);
        }
    }

    #[test]
    fn gf_multiplication_basics() {
        assert_eq!(gmul(0x57, 0x02), 0xae); // xtime example from FIPS-197
        assert_eq!(gmul(0x57, 0x13), 0xfe); // §4.2.1 worked example
        assert_eq!(gmul(1, 0xab), 0xab);
        assert_eq!(gmul(0, 0xff), 0);
    }

    #[test]
    fn key_schedule_first_and_last_words() {
        // FIPS-197 Appendix A.1 key expansion check points.
        let key: [u8; 16] = hex("2b7e151628aed2a6abf7158809cf4f3c").try_into().unwrap();
        let aes = Aes128::new(&key);
        assert_eq!(
            aes.round_keys[0].to_vec(),
            hex("2b7e151628aed2a6abf7158809cf4f3c")
        );
        assert_eq!(
            aes.round_keys[10].to_vec(),
            hex("d014f9a8c9ee2589e13f0cc8b6630ca6")
        );
    }
}

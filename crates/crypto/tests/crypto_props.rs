//! Property-based tests of the crypto substrate.

use alert_crypto::{
    mac, open, pk_decrypt, pk_encrypt, pk_sign, pk_verify, seal, sha1, KeyPair, Sha1, SymmetricKey,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    /// Stream cipher round-trips for arbitrary payloads and keys.
    #[test]
    fn cipher_roundtrip(data in proptest::collection::vec(any::<u8>(), 0..2048), key_seed in any::<u64>(), nonce_seed in any::<u64>()) {
        let key = SymmetricKey::derive(&key_seed.to_be_bytes());
        let mut rng = StdRng::seed_from_u64(nonce_seed);
        let sealed = seal(&key, &data, &mut rng);
        prop_assert_eq!(open(&key, &sealed), data);
    }

    /// Non-trivial plaintexts never appear verbatim in the ciphertext.
    #[test]
    fn ciphertext_differs_from_plaintext(data in proptest::collection::vec(any::<u8>(), 16..512), seed in any::<u64>()) {
        let key = SymmetricKey::derive(b"fixed");
        let mut rng = StdRng::seed_from_u64(seed);
        let sealed = seal(&key, &data, &mut rng);
        prop_assert_ne!(sealed.ciphertext, data);
    }

    /// Incremental SHA-1 equals one-shot regardless of chunking.
    #[test]
    fn sha1_chunking_invariance(data in proptest::collection::vec(any::<u8>(), 0..1024), chunk in 1usize..64) {
        let mut h = Sha1::new();
        for c in data.chunks(chunk) {
            h.update(c);
        }
        prop_assert_eq!(h.finalize(), sha1(&data));
    }

    /// MAC is deterministic per (key, data) and key-sensitive.
    #[test]
    fn mac_properties(data in proptest::collection::vec(any::<u8>(), 0..256), k1 in any::<u64>(), k2 in any::<u64>()) {
        prop_assume!(k1 != k2);
        let key1 = SymmetricKey::derive(&k1.to_be_bytes());
        let key2 = SymmetricKey::derive(&k2.to_be_bytes());
        prop_assert_eq!(mac(&key1, &data), mac(&key1, &data));
        prop_assert_ne!(mac(&key1, &data), mac(&key2, &data));
    }

    /// RSA block coding round-trips arbitrary byte strings.
    #[test]
    fn pk_roundtrip(data in proptest::collection::vec(any::<u8>(), 0..128), seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let kp = KeyPair::generate(&mut rng);
        let sealed = pk_encrypt(&kp.public, &data);
        prop_assert_eq!(pk_decrypt(&kp.private, &sealed).expect("own key decrypts"), data);
    }

    /// Signatures verify under the right key and fail under a flipped
    /// digest bit.
    #[test]
    fn signature_soundness(digest in any::<[u8; 8]>(), bit in 0usize..64, seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let kp = KeyPair::generate(&mut rng);
        let sig = pk_sign(&kp.private, &digest);
        prop_assert!(pk_verify(&kp.public, &digest, &sig));
        let mut tampered = digest;
        tampered[bit / 8] ^= 1 << (bit % 8);
        prop_assert!(!pk_verify(&kp.public, &tampered, &sig));
    }
}

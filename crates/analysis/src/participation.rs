//! The number of possible participating nodes (paper Section 4.1).
//!
//! A node can participate in an S–D routing if it lies in the zone a
//! packet may traverse. With `sigma` the *closeness* — the number of
//! partitions needed to separate S and D — the paper derives:
//!
//! * Eq. (5): `p_s(sigma) = 2^-sigma`, the probability a uniformly placed
//!   destination needs exactly `sigma` partitions;
//! * Eq. (6): `N_e(sigma) = a(sigma, l_A) * b(sigma, l_B) * rho`, the node
//!   population of the `sigma`-th partitioned zone;
//! * Eq. (7): `N_e = sum_sigma N_e(sigma) p_s(sigma)`.

use alert_geom::zone_side_lengths;

/// Eq. (5): probability that exactly `sigma` partitions separate a random
/// S–D pair, for `1 <= sigma <= h`.
pub fn separation_probability(sigma: u32) -> f64 {
    assert!(sigma >= 1, "at least one partition is always performed");
    2f64.powi(-(sigma as i32))
}

/// Eq. (6): expected number of nodes that can take part in the routing
/// when S and D separate after `sigma` partitions: the population of the
/// `sigma`-th partitioned zone.
///
/// `l_a`/`l_b` are the field side lengths in metres and `density` is in
/// nodes per square metre.
pub fn expected_participants_given_sigma(sigma: u32, l_a: f64, l_b: f64, density: f64) -> f64 {
    let (a, b) = zone_side_lengths(sigma, l_a, l_b);
    a * b * density
}

/// Eq. (7): expected number of possible participating nodes from a source
/// to a uniformly random destination, with `h` total partitions.
pub fn expected_participants(h: u32, l_a: f64, l_b: f64, density: f64) -> f64 {
    (1..=h)
        .map(|sigma| {
            expected_participants_given_sigma(sigma, l_a, l_b, density)
                * separation_probability(sigma)
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    const L: f64 = 1000.0;

    fn density(n: f64) -> f64 {
        n / (L * L)
    }

    #[test]
    fn sigma_one_zone_is_half_the_field() {
        // One partition halves the field: N_e(1) = N / 2.
        let ne1 = expected_participants_given_sigma(1, L, L, density(200.0));
        assert!((ne1 - 100.0).abs() < 1e-9);
    }

    #[test]
    fn separation_probabilities_decay_geometrically() {
        assert_eq!(separation_probability(1), 0.5);
        assert_eq!(separation_probability(2), 0.25);
        assert_eq!(separation_probability(5), 1.0 / 32.0);
    }

    #[test]
    fn participants_saturate_near_quarter_of_population() {
        // The paper observes the curve flattens around N/4 as H grows
        // (Fig. 7a): sum_sigma (N / 2^sigma) * 2^-sigma -> N/3 * (1 - 4^-H)
        // ... with the alternating side lengths the limit sits near N/4-N/3.
        let n = 200.0;
        let big_h = expected_participants(12, L, L, density(n));
        assert!(
            big_h > n / 5.0 && big_h < n / 2.5,
            "saturation value {big_h} outside the paper's ~N/4 regime"
        );
        // ...and increments become negligible.
        let h11 = expected_participants(11, L, L, density(n));
        assert!(big_h - h11 < 0.01);
    }

    #[test]
    fn fast_growth_from_h1_to_h2() {
        // Fig. 7a: the sharpest increase happens from H = 1 to H = 2.
        let n = density(200.0);
        let deltas: Vec<f64> = (1..6)
            .map(|h| expected_participants(h + 1, L, L, n) - expected_participants(h, L, L, n))
            .collect();
        assert!(
            deltas[0] > deltas[1] && deltas[1] > deltas[2],
            "increments should shrink: {deltas:?}"
        );
    }

    #[test]
    fn participants_scale_linearly_with_population() {
        // Fig. 7a's three curves (100/200/400 nodes) are scalar multiples.
        let h = 5;
        let p100 = expected_participants(h, L, L, density(100.0));
        let p200 = expected_participants(h, L, L, density(200.0));
        let p400 = expected_participants(h, L, L, density(400.0));
        assert!((p200 / p100 - 2.0).abs() < 1e-9);
        assert!((p400 / p200 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn monotone_in_h() {
        let n = density(200.0);
        let mut prev = 0.0;
        for h in 1..10 {
            let v = expected_participants(h, L, L, n);
            assert!(v >= prev, "not monotone at h={h}");
            prev = v;
        }
    }
}

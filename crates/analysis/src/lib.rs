//! # alert-analysis
//!
//! The paper's closed-form theory (Section 4), used both to regenerate the
//! analytical figures (Figs. 6–9) and to cross-validate the simulator:
//!
//! * [`participation`] — the expected number of *possible* participating
//!   nodes (Eqs. 5–7, Fig. 7a);
//! * [`forwarders`] — the expected number of random forwarders
//!   (Eqs. 8–10, Fig. 7b);
//! * [`destination`] — destination-zone residence dynamics
//!   (Eqs. 11–15, Figs. 9a/9b) and the location-service overhead
//!   condition (end of Section 4.3);
//! * [`source_anonymity`] — quantified versions of the paper's prose
//!   models: pseudonym brute-force cost (§2.2) and the notify-and-go
//!   window tradeoff (§2.6).

//! ## Example
//!
//! ```
//! // The paper's default: H = 5 partitions.
//! let rfs = alert_analysis::expected_random_forwarders(5);
//! assert!((rfs - 1.53125).abs() < 1e-9);
//! let remaining = alert_analysis::remaining_nodes(
//!     5, 1000.0, 1000.0, 200e-6, 2.0, 20.0);
//! assert!(remaining > 4.0 && remaining < 6.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod destination;
pub mod forwarders;
pub mod participation;
pub mod source_anonymity;

pub use destination::{beta, remaining_nodes, required_density, residence_probability};
pub use forwarders::{
    expected_random_forwarders, expected_random_forwarders_given_sigma, p_rf_count,
};
pub use participation::{
    expected_participants, expected_participants_given_sigma, separation_probability,
};
pub use source_anonymity::{
    minimal_t0_for_collision_target, notify_added_delay_s, notify_collision_probability,
    pseudonym_bruteforce_hashes,
};

/// Binomial coefficient `C(n, k)` as `f64` (exact for the small `n` the
/// paper's formulas need).
pub(crate) fn binomial(n: u32, k: u32) -> f64 {
    if k > n {
        return 0.0;
    }
    let k = k.min(n - k);
    let mut acc = 1.0f64;
    for i in 0..k {
        acc = acc * f64::from(n - i) / f64::from(i + 1);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::binomial;

    #[test]
    fn binomial_matches_pascal() {
        assert_eq!(binomial(0, 0), 1.0);
        assert_eq!(binomial(5, 0), 1.0);
        assert_eq!(binomial(5, 5), 1.0);
        assert_eq!(binomial(5, 2), 10.0);
        assert_eq!(binomial(10, 3), 120.0);
        assert_eq!(binomial(3, 4), 0.0);
    }

    #[test]
    fn binomial_row_sums_to_power_of_two() {
        let n = 12;
        let sum: f64 = (0..=n).map(|k| binomial(n, k)).sum();
        assert!((sum - 2f64.powi(n as i32)).abs() < 1e-9);
    }
}

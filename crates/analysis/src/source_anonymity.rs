//! Source-anonymity models (paper Sections 2.2 and 2.6).
//!
//! Two quantitative discussions in the paper's prose are made computable
//! here:
//!
//! * **Pseudonym brute-force cost (§2.2).** A pseudonym is
//!   `SHA1(MAC || timestamp)` with the sub-second digits randomized. An
//!   attacker who knows the MAC must enumerate the randomized digits —
//!   "the attacker needs to compute, e.g., 10^5 times for one packet per
//!   node" — across every candidate node it hears.
//! * **"Notify and go" window (§2.6).** `t0` must be "long enough to
//!   minimize interference" (simultaneous cover transmissions collide)
//!   "and balance out the delay": collision probability falls with `t0`,
//!   added latency grows as `t + t0/2`.

/// Expected hash evaluations to brute-force one pseudonym observation:
/// `candidates x randomization_space / 2` (half the space on average).
///
/// `timestamp_precision_s` is the clock precision kept in the hash input
/// (the paper keeps 1 s); `randomized_resolution_s` is the granularity of
/// the randomized digits (e.g. 10 µs -> 10^5 values per second).
pub fn pseudonym_bruteforce_hashes(
    candidates: u64,
    timestamp_precision_s: f64,
    randomized_resolution_s: f64,
) -> f64 {
    assert!(timestamp_precision_s > 0.0 && randomized_resolution_s > 0.0);
    let space = (timestamp_precision_s / randomized_resolution_s).max(1.0);
    candidates as f64 * space / 2.0
}

/// Probability that at least two of the `eta + 1` notify-and-go
/// transmissions (the source plus `eta` covering neighbors) overlap in
/// the air, given each transmission lasts `airtime_s` and start times are
/// uniform over a window of length `t0_s`.
///
/// Uses the standard spacing bound: with `n` uniform arrivals in `[0, w]`,
/// `P(no two within a) = max(0, 1 - (n-1) a / w)^n` (exact for the
/// order-statistics gap model, clamped for short windows).
pub fn notify_collision_probability(eta: usize, t0_s: f64, airtime_s: f64) -> f64 {
    assert!(t0_s >= 0.0 && airtime_s >= 0.0);
    let n = eta as f64 + 1.0;
    if t0_s <= 0.0 {
        return if n > 1.0 { 1.0 } else { 0.0 };
    }
    let free = (1.0 - (n - 1.0) * airtime_s / t0_s).max(0.0);
    1.0 - free.powf(n)
}

/// Mean extra latency the notify-and-go back-off adds to the data packet:
/// `t + t0 / 2` (§2.6: the source waits a uniform draw from `[t, t+t0]`).
pub fn notify_added_delay_s(t_s: f64, t0_s: f64) -> f64 {
    t_s + t0_s / 2.0
}

/// The smallest window `t0` keeping the collision probability below
/// `target`, found by doubling + bisection. Returns `None` if even a
/// window of `max_t0_s` cannot reach the target.
pub fn minimal_t0_for_collision_target(
    eta: usize,
    airtime_s: f64,
    target: f64,
    max_t0_s: f64,
) -> Option<f64> {
    assert!((0.0..1.0).contains(&target));
    if notify_collision_probability(eta, max_t0_s, airtime_s) > target {
        return None;
    }
    let (mut lo, mut hi) = (0.0f64, max_t0_s);
    for _ in 0..64 {
        let mid = (lo + hi) / 2.0;
        if notify_collision_probability(eta, mid, airtime_s) > target {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Some(hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_bruteforce_example() {
        // §2.2's example: ~10^5 computations for one packet per node.
        // 1 s precision randomized at 10 us resolution = 10^5 values;
        // expected work for one candidate is half the space.
        let work = pseudonym_bruteforce_hashes(1, 1.0, 1e-5);
        assert!((work - 5e4).abs() < 1.0);
        // "There may also be many nodes for an attacker to listen":
        // 200 candidates push it to 10^7.
        let many = pseudonym_bruteforce_hashes(200, 1.0, 1e-5);
        assert!((many - 1e7).abs() < 1e3);
    }

    #[test]
    fn finer_randomization_costs_more() {
        let coarse = pseudonym_bruteforce_hashes(1, 1.0, 1e-3);
        let fine = pseudonym_bruteforce_hashes(1, 1.0, 1e-9);
        assert!(fine > coarse * 1e5);
    }

    #[test]
    fn collision_probability_falls_with_t0() {
        let airtime = 0.0007; // a 16-byte cover frame
        let p_short = notify_collision_probability(20, 0.002, airtime);
        let p_long = notify_collision_probability(20, 0.5, airtime);
        assert!(p_short > p_long);
        assert!(p_short > 0.99, "cramming 21 frames into 2 ms must collide");
        assert!(
            p_long < 0.6,
            "21 frames over 500 ms rarely collide, p={p_long}"
        );
    }

    #[test]
    fn collision_edges() {
        assert_eq!(notify_collision_probability(0, 0.01, 0.001), 0.0);
        assert_eq!(notify_collision_probability(5, 0.0, 0.001), 1.0);
        // Zero airtime never collides.
        assert_eq!(notify_collision_probability(50, 0.01, 0.0), 0.0);
    }

    #[test]
    fn collision_grows_with_eta() {
        let airtime = 0.0007;
        let p5 = notify_collision_probability(5, 0.02, airtime);
        let p40 = notify_collision_probability(40, 0.02, airtime);
        assert!(p40 > p5);
    }

    #[test]
    fn added_delay_is_t_plus_half_window() {
        assert!((notify_added_delay_s(0.001, 0.004) - 0.003).abs() < 1e-12);
    }

    #[test]
    fn minimal_t0_matches_direct_evaluation() {
        let eta = 20;
        let airtime = 0.0007;
        let t0 = minimal_t0_for_collision_target(eta, airtime, 0.5, 10.0).unwrap();
        let p = notify_collision_probability(eta, t0, airtime);
        assert!(p <= 0.5 + 1e-6, "p at minimal t0 is {p}");
        // Slightly smaller windows must violate the target.
        let p_tighter = notify_collision_probability(eta, t0 * 0.9, airtime);
        assert!(p_tighter > 0.5);
    }

    #[test]
    fn impossible_target_is_none() {
        // With an enormous eta and tiny max window, no t0 suffices.
        assert!(minimal_t0_for_collision_target(10_000, 0.001, 0.01, 0.05).is_none());
    }

    #[test]
    fn tradeoff_shape_matches_section_2_6() {
        // "A long t0 may lead to a long transmission delay while a short
        // t0 may result in interference": as t0 grows, collisions fall
        // and delay rises — the knee is where both are acceptable.
        let airtime = 0.0007;
        let mut last_p = 1.0;
        let mut last_d = 0.0;
        for t0 in [0.001f64, 0.004, 0.016, 0.064] {
            let p = notify_collision_probability(20, t0, airtime);
            let d = notify_added_delay_s(0.001, t0);
            assert!(p <= last_p + 1e-12);
            assert!(d > last_d);
            last_p = p;
            last_d = d;
        }
    }
}

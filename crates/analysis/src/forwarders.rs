//! The number of random forwarders (paper Section 4.2).
//!
//! Each of the `H - sigma` partition opportunities after the first
//! separation flips a fair coin between an `RF+` choice (one more random
//! forwarder) and an `RF-` choice, giving a Binomial distribution:
//!
//! * Eq. (8): `p_i(sigma, i) = C(H - sigma, i) (1/2)^(H - sigma)`;
//! * Eq. (9): `N_RF(sigma) = sum_i i * p_i(sigma, i)`;
//! * Eq. (10): `N_RF = sum_sigma N_RF(sigma) / 2^sigma`.

use crate::binomial;

/// Eq. (8): probability that an S–D routing with closeness `sigma` and
/// `h` total partitions uses exactly `i` random forwarders.
pub fn p_rf_count(h: u32, sigma: u32, i: u32) -> f64 {
    assert!(sigma <= h, "closeness cannot exceed the partition count");
    let n = h - sigma;
    binomial(n, i) * 2f64.powi(-(n as i32))
}

/// Eq. (9): expected number of RFs given closeness `sigma`.
pub fn expected_random_forwarders_given_sigma(h: u32, sigma: u32) -> f64 {
    let n = h - sigma;
    (1..=n)
        .map(|i| f64::from(i) * p_rf_count(h, sigma, i))
        .sum()
}

/// Eq. (10): expected number of RFs over the closeness distribution.
pub fn expected_random_forwarders(h: u32) -> f64 {
    // `+ 0.0` normalizes the IEEE negative zero an empty inner sum can
    // propagate (it would print as "-0.000").
    (1..=h)
        .map(|sigma| expected_random_forwarders_given_sigma(h, sigma) * 2f64.powi(-(sigma as i32)))
        .sum::<f64>()
        + 0.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rf_distribution_is_binomial_mean() {
        // Binomial(n, 1/2) has mean n/2.
        for h in 1..10 {
            for sigma in 1..=h {
                let mean = expected_random_forwarders_given_sigma(h, sigma);
                assert!(
                    (mean - f64::from(h - sigma) / 2.0).abs() < 1e-9,
                    "h={h} sigma={sigma}"
                );
            }
        }
    }

    #[test]
    fn rf_probabilities_sum_to_one() {
        let (h, sigma) = (8, 2);
        let total: f64 = (0..=(h - sigma)).map(|i| p_rf_count(h, sigma, i)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn grows_linearly_with_h() {
        // Fig. 7b: the expected RF count is linear in the number of
        // partitions. N_RF = sum_sigma ((H - sigma)/2) 2^-sigma
        //            = H/2 * (1 - 2^-H) - (1 - (H+2) 2^-(H+1)) ... check
        // linear spacing for the mid-range of H.
        let d1 = expected_random_forwarders(6) - expected_random_forwarders(5);
        let d2 = expected_random_forwarders(9) - expected_random_forwarders(8);
        assert!((d1 - d2).abs() < 0.05, "spacing {d1} vs {d2} not ~constant");
        // Asymptotic slope is 1/2 per extra partition.
        assert!((d2 - 0.5).abs() < 0.05);
    }

    #[test]
    fn h5_value_matches_hand_computation() {
        // H = 5 (the paper's default):
        // N_RF = sum_{sigma=1}^{5} ((5 - sigma)/2) * 2^-sigma
        //      = 2/2*1/2 + 3/2*1/4... explicitly:
        let hand: f64 = (1..=5)
            .map(|s| f64::from(5 - s) / 2.0 * 2f64.powi(-s))
            .sum();
        assert!((expected_random_forwarders(5) - hand).abs() < 1e-12);
        assert!((hand - 1.53125).abs() < 1e-9, "hand value {hand}");
    }

    #[test]
    fn zero_for_h1_when_pairs_always_split_once() {
        // With H = 1, sigma = 1 leaves no further partitions: no RFs.
        assert_eq!(expected_random_forwarders(1), 0.0);
    }

    #[test]
    fn monotone_in_h() {
        let mut prev = -1.0;
        for h in 1..12 {
            let v = expected_random_forwarders(h);
            assert!(v > prev, "not monotone at h={h}");
            prev = v;
        }
    }
}

//! Destination anonymity over time (paper Section 4.3).
//!
//! Following ZAP \[13\], a node at speed `v` remains inside a circular zone
//! of radius `r` after time `t` with probability `p_r(t) = exp(-t/beta)`,
//! `beta = pi r / (2 v)` (Eqs. 11–12). ALERT's square destination zone of
//! side `2 r'` is approximated by the equal-area circle `r = 2 r'/sqrt(pi)`
//! (Eq. 13), giving `beta = sqrt(pi) r' / v` (Eq. 14) and the remaining
//! population `N_r(t) = p_r(t) a(H, l_A) b(H, l_B) rho` (Eq. 15).

use alert_geom::zone_side_lengths;

/// Eqs. (12)–(14): the residence time constant `beta` for a square zone of
/// side `2 r'` (i.e. `side_m = 2 r'`) and node speed `v` (m/s).
///
/// Returns `f64::INFINITY` for static nodes (they never leave).
pub fn beta(side_m: f64, speed_mps: f64) -> f64 {
    assert!(side_m > 0.0, "zone side must be positive");
    if speed_mps <= 0.0 {
        return f64::INFINITY;
    }
    let r_prime = side_m / 2.0;
    std::f64::consts::PI.sqrt() * r_prime / speed_mps
}

/// Eq. (11): probability a node is still inside the zone after `t`
/// seconds.
pub fn residence_probability(side_m: f64, speed_mps: f64, t: f64) -> f64 {
    let b = beta(side_m, speed_mps);
    if b.is_infinite() {
        1.0
    } else {
        (-t / b).exp()
    }
}

/// Eq. (15): expected number of the original zone members still inside the
/// destination zone after `t` seconds, for a field `l_a x l_b` partitioned
/// `h` times with node density `rho` (nodes per square metre).
///
/// As in the paper, the square-zone approximation assumes an even number
/// of partitions of a square field; for odd `h` we use the geometric mean
/// of the two side lengths, which coincides for the even case.
pub fn remaining_nodes(h: u32, l_a: f64, l_b: f64, density: f64, speed_mps: f64, t: f64) -> f64 {
    let (a, b) = zone_side_lengths(h, l_a, l_b);
    let side = (a * b).sqrt(); // equal-area square side
    let initial = a * b * density;
    residence_probability(side, speed_mps, t) * initial
}

/// Fig. 13b's inverse problem: the node density (nodes per square metre)
/// required so that `target` nodes remain in the zone after `t` seconds at
/// the given speed.
pub fn required_density(h: u32, l_a: f64, l_b: f64, speed_mps: f64, t: f64, target: f64) -> f64 {
    let (a, b) = zone_side_lengths(h, l_a, l_b);
    let side = (a * b).sqrt();
    let p = residence_probability(side, speed_mps, t);
    target / (p * a * b)
}

#[cfg(test)]
mod tests {
    use super::*;

    const L: f64 = 1000.0;

    #[test]
    fn beta_matches_formula() {
        // side 250 m -> r' = 125; beta = sqrt(pi) * 125 / 2.
        let b = beta(250.0, 2.0);
        assert!((b - std::f64::consts::PI.sqrt() * 62.5).abs() < 1e-9);
    }

    #[test]
    fn static_nodes_never_leave() {
        assert_eq!(residence_probability(250.0, 0.0, 1e9), 1.0);
        let n0 = remaining_nodes(5, L, L, 200e-6, 0.0, 0.0);
        let n_later = remaining_nodes(5, L, L, 200e-6, 0.0, 100.0);
        assert_eq!(n0, n_later);
    }

    #[test]
    fn initial_population_matches_zone_size() {
        // H = 5, 200 nodes/km^2: zone holds 200 / 32 = 6.25 nodes at t=0.
        let n0 = remaining_nodes(5, L, L, 200.0 / (L * L), 2.0, 0.0);
        assert!((n0 - 6.25).abs() < 1e-9);
    }

    #[test]
    fn decay_is_exponential_in_time() {
        let d = 200.0 / (L * L);
        let n10 = remaining_nodes(5, L, L, d, 2.0, 10.0);
        let n20 = remaining_nodes(5, L, L, d, 2.0, 20.0);
        let n30 = remaining_nodes(5, L, L, d, 2.0, 30.0);
        // Constant ratio between equal time steps.
        assert!(((n20 / n10) - (n30 / n20)).abs() < 1e-9);
        assert!(n10 > n20 && n20 > n30);
    }

    #[test]
    fn faster_nodes_leave_sooner() {
        // Fig. 9b: higher speed, fewer remaining nodes.
        let d = 200.0 / (L * L);
        let slow = remaining_nodes(5, L, L, d, 2.0, 20.0);
        let fast = remaining_nodes(5, L, L, d, 8.0, 20.0);
        assert!(fast < slow);
    }

    #[test]
    fn denser_networks_retain_more() {
        // Fig. 9a: the three density curves are scalar multiples.
        let n100 = remaining_nodes(5, L, L, 100.0 / (L * L), 2.0, 15.0);
        let n400 = remaining_nodes(5, L, L, 400.0 / (L * L), 2.0, 15.0);
        assert!((n400 / n100 - 4.0).abs() < 1e-9);
    }

    #[test]
    fn fewer_partitions_bigger_zone_more_remaining() {
        // Fig. 13a: H = 4 keeps more nodes than H = 5.
        let d = 200.0 / (L * L);
        let h4 = remaining_nodes(4, L, L, d, 2.0, 10.0);
        let h5 = remaining_nodes(5, L, L, d, 2.0, 10.0);
        assert!(h4 > h5);
    }

    #[test]
    fn required_density_inverts_remaining_nodes() {
        // Round-trip: density needed for `target` remaining -> plugging it
        // back yields the target.
        let (h, v, t, target) = (5, 4.0, 10.0, 5.0);
        let rho = required_density(h, L, L, v, t, target);
        let back = remaining_nodes(h, L, L, rho, v, t);
        assert!((back - target).abs() < 1e-9);
    }

    #[test]
    fn required_density_increases_with_speed() {
        // Fig. 13b: faster movement demands denser networks.
        let d2 = required_density(5, L, L, 2.0, 10.0, 5.0);
        let d8 = required_density(5, L, L, 8.0, 10.0, 5.0);
        assert!(d8 > d2);
    }
}

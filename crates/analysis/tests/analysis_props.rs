//! Property tests for the paper's closed forms (Eqs. 1–15 plus the §2
//! prose models): probabilities stay in [0, 1], distributions normalize,
//! expectations are monotone in the right arguments, and the documented
//! limits hold.
//!
//! The sweeps are deterministic grids rather than random sampling: the
//! functions are pure closed forms, so dense grids over the argument
//! ranges the paper uses (and well past them) give repeatable, complete
//! coverage with no shrinking machinery needed.

use alert_analysis::{
    beta, expected_participants, expected_participants_given_sigma, expected_random_forwarders,
    expected_random_forwarders_given_sigma, minimal_t0_for_collision_target, notify_added_delay_s,
    notify_collision_probability, p_rf_count, pseudonym_bruteforce_hashes, remaining_nodes,
    required_density, residence_probability, separation_probability,
};

const FIELDS: [(f64, f64); 4] = [
    (1000.0, 1000.0),
    (500.0, 2000.0),
    (200.0, 200.0),
    (3000.0, 1500.0),
];
const DENSITIES: [f64; 3] = [50e-6, 200e-6, 1000e-6];
const SPEEDS: [f64; 4] = [0.5, 2.0, 10.0, 30.0];
const TIMES: [f64; 5] = [0.0, 1.0, 20.0, 100.0, 1000.0];

// --- Eqs. 5–7: participation ---------------------------------------------

#[test]
fn separation_probabilities_are_a_subnormalized_distribution() {
    for h in 1..=20u32 {
        let mut total = 0.0;
        for sigma in 1..=h {
            let p = separation_probability(sigma);
            assert!((0.0..=1.0).contains(&p), "p_s({sigma}) = {p}");
            // Eq. (5) halves with every extra partition.
            if sigma > 1 {
                assert!(p < separation_probability(sigma - 1));
            }
            total += p;
        }
        // The tail (> h partitions) carries the missing 2^-h mass.
        assert!(total <= 1.0 + 1e-12, "h={h}: sum {total}");
        assert!((total - (1.0 - 2f64.powi(-(h as i32)))).abs() < 1e-12);
    }
}

#[test]
fn participants_shrink_with_closeness_and_scale_with_density() {
    for &(l_a, l_b) in &FIELDS {
        for &rho in &DENSITIES {
            for sigma in 1..=12u32 {
                let n = expected_participants_given_sigma(sigma, l_a, l_b, rho);
                assert!(n >= 0.0);
                // Each partition halves the zone population (Eq. 6).
                if sigma > 1 {
                    let prev = expected_participants_given_sigma(sigma - 1, l_a, l_b, rho);
                    assert!(n <= prev + 1e-9, "sigma={sigma}: {n} > {prev}");
                }
                // Linear in density.
                let doubled = expected_participants_given_sigma(sigma, l_a, l_b, 2.0 * rho);
                assert!((doubled - 2.0 * n).abs() < 1e-9 * (1.0 + n));
            }
        }
    }
}

#[test]
fn expected_participants_grow_with_h_and_stay_below_the_population() {
    for &(l_a, l_b) in &FIELDS {
        for &rho in &DENSITIES {
            let population = l_a * l_b * rho;
            let mut prev = 0.0;
            for h in 1..=12u32 {
                let n = expected_participants(h, l_a, l_b, rho);
                assert!(n >= prev - 1e-9, "h={h}: {n} < {prev}");
                assert!(
                    n <= population,
                    "h={h}: {n} exceeds population {population}"
                );
                prev = n;
            }
        }
    }
}

// --- Eqs. 8–10: random forwarders ----------------------------------------

#[test]
fn rf_count_distribution_is_normalized_and_in_unit_range() {
    for h in 1..=16u32 {
        for sigma in 1..=h {
            let mut total = 0.0;
            for i in 0..=(h - sigma) {
                let p = p_rf_count(h, sigma, i);
                assert!((0.0..=1.0).contains(&p), "p({h},{sigma},{i}) = {p}");
                total += p;
            }
            assert!((total - 1.0).abs() < 1e-9, "h={h} sigma={sigma}: {total}");
            // Impossible counts carry no mass.
            assert_eq!(p_rf_count(h, sigma, h - sigma + 1), 0.0);
        }
    }
}

#[test]
fn expected_rfs_are_monotone_in_h_and_bounded() {
    let mut prev = 0.0;
    for h in 1..=16u32 {
        let n = expected_random_forwarders(h);
        // More partitions, more RF opportunities (Fig. 7b's rising line).
        assert!(n >= prev - 1e-12, "h={h}: {n} < {prev}");
        // Never more than the per-sigma ceiling (h - 1)/2.
        assert!(n <= f64::from(h) / 2.0);
        assert!(n >= 0.0);
        prev = n;
        for sigma in 1..=h {
            let given = expected_random_forwarders_given_sigma(h, sigma);
            assert!((0.0..=f64::from(h - sigma)).contains(&given));
        }
    }
}

// --- Eqs. 11–15: destination-zone residence ------------------------------

#[test]
fn residence_probability_is_a_probability_with_the_documented_limits() {
    for side in [50.0, 125.0, 500.0, 2000.0] {
        // Static nodes never leave.
        assert_eq!(residence_probability(side, 0.0, 1e6), 1.0);
        assert_eq!(beta(side, 0.0), f64::INFINITY);
        for &v in &SPEEDS {
            // At t = 0 everyone is still inside.
            assert!((residence_probability(side, v, 0.0) - 1.0).abs() < 1e-12);
            let mut prev = 1.0;
            for &t in &TIMES {
                let p = residence_probability(side, v, t);
                assert!((0.0..=1.0).contains(&p), "p_r({side},{v},{t}) = {p}");
                // Monotone nonincreasing in time.
                assert!(p <= prev + 1e-12);
                prev = p;
            }
            // Everyone eventually leaves a finite zone.
            assert!(residence_probability(side, v, 1e9) < 1e-6);
            // Bigger zones hold nodes longer.
            assert!(beta(2.0 * side, v) > beta(side, v));
            // Faster nodes leave sooner.
            assert!(beta(side, 2.0 * v) < beta(side, v));
        }
    }
}

#[test]
fn remaining_nodes_decay_from_the_zone_population_to_zero() {
    for &(l_a, l_b) in &FIELDS {
        for &rho in &DENSITIES {
            for h in 1..=10u32 {
                for &v in &SPEEDS {
                    let initial = remaining_nodes(h, l_a, l_b, rho, v, 0.0);
                    assert!(initial <= l_a * l_b * rho + 1e-9);
                    let mut prev = f64::INFINITY;
                    for &t in &TIMES {
                        let n = remaining_nodes(h, l_a, l_b, rho, v, t);
                        assert!(n >= 0.0);
                        assert!(n <= prev + 1e-9, "t={t}: {n} > {prev}");
                        prev = n;
                    }
                    assert!(remaining_nodes(h, l_a, l_b, rho, v, 1e9) < 1e-6);
                }
            }
        }
    }
}

#[test]
fn required_density_inverts_remaining_nodes() {
    for &(l_a, l_b) in &FIELDS {
        for h in [2u32, 5, 8] {
            for &v in &SPEEDS {
                for target in [1.0, 5.0, 25.0] {
                    let rho = required_density(h, l_a, l_b, v, 20.0, target);
                    assert!(rho > 0.0);
                    let achieved = remaining_nodes(h, l_a, l_b, rho, v, 20.0);
                    assert!(
                        (achieved - target).abs() < 1e-6 * target,
                        "round trip: wanted {target}, got {achieved}"
                    );
                }
            }
        }
    }
}

// --- §2.2 / §2.6 prose models --------------------------------------------

#[test]
fn bruteforce_cost_scales_with_candidates_and_resolution() {
    for candidates in [1u64, 100, 10_000] {
        let base = pseudonym_bruteforce_hashes(candidates, 1.0, 1e-5);
        // Half the space on average, never less than half the candidates.
        assert!(base >= candidates as f64 / 2.0);
        // Linear in the candidate count.
        let doubled = pseudonym_bruteforce_hashes(2 * candidates, 1.0, 1e-5);
        assert!((doubled - 2.0 * base).abs() < 1e-9 * base);
        // Finer randomization strictly raises the cost.
        assert!(pseudonym_bruteforce_hashes(candidates, 1.0, 1e-6) > base);
    }
}

#[test]
fn notify_collision_probability_is_monotone_and_in_unit_range() {
    for eta in [0usize, 1, 3, 10] {
        for airtime in [1e-4, 1e-3, 1e-2] {
            let mut prev = 1.0;
            for t0 in [1e-3, 1e-2, 0.1, 1.0, 10.0] {
                let p = notify_collision_probability(eta, t0, airtime);
                assert!((0.0..=1.0).contains(&p), "P({eta},{t0},{airtime}) = {p}");
                // A wider window can only reduce collisions.
                assert!(p <= prev + 1e-12);
                prev = p;
                // More cover traffic can only add collisions.
                assert!(p <= notify_collision_probability(eta + 1, t0, airtime) + 1e-12);
            }
        }
    }
    // Degenerate window: any competing transmission collides surely.
    assert_eq!(notify_collision_probability(1, 0.0, 1e-3), 1.0);
    assert_eq!(notify_collision_probability(0, 0.0, 1e-3), 0.0);
}

#[test]
fn minimal_t0_meets_its_collision_target() {
    for eta in [1usize, 3, 10] {
        for target in [0.5, 0.1, 0.01] {
            let t0 = minimal_t0_for_collision_target(eta, 1e-3, target, 3600.0)
                .expect("an hour-long window must suffice");
            assert!(t0 >= 0.0);
            let p = notify_collision_probability(eta, t0, 1e-3);
            assert!(p <= target + 1e-9, "eta={eta}: P({t0}) = {p} > {target}");
        }
    }
    // An impossible target over a tiny window reports None.
    assert!(minimal_t0_for_collision_target(10, 1.0, 0.01, 1.0).is_none());
    // The added latency model is linear in both knobs.
    assert!((notify_added_delay_s(0.5, 2.0) - 1.5).abs() < 1e-12);
}

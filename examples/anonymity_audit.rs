//! Anonymity audit: subject one ALERT deployment to the paper's three
//! attack classes (Sections 3.1–3.3) and print a report.
//!
//! ```text
//! cargo run --release --example anonymity_audit
//! cargo run --release --example anonymity_audit -- --defense
//! ```

use alert::adversary::{
    belief_entropy, correlate, uniform_belief, IntersectionAttack, RecipientSet, TrafficLog,
};
use alert::prelude::*;

fn main() {
    let defense = std::env::args().any(|a| a == "--defense");
    let mut scenario = ScenarioConfig::default().with_duration(60.0);
    scenario.speed = 4.0;
    scenario.traffic.pairs = 1; // one monitored channel
    let acfg = if defense {
        AlertConfig::default().with_intersection_defense(3)
    } else {
        AlertConfig::default()
    };

    println!(
        "Auditing ALERT ({}) — one S-D channel under full passive observation\n",
        if defense {
            "intersection defense ON"
        } else {
            "intersection defense OFF"
        }
    );

    let (log, capture) = TrafficLog::new();
    let mut world = World::new(scenario, 99, move |_, _| Alert::new(acfg));
    world.add_observer(Box::new(log));
    let session = world.sessions()[0];
    let (src, dst) = (session.src, session.dst);

    // Drive the run in slices so the intersection attacker can observe
    // each zone-delivery round as it happens.
    let mut attack = IntersectionAttack::new();
    let nodes = world.config().nodes;
    let range = world.config().mac.range_m;
    let mut seen = vec![0usize; nodes];
    let mut t = 0.0;
    while t < 60.0 {
        t += 0.5;
        world.run_until(t);
        #[allow(clippy::needless_range_loop)] // i doubles as the NodeId
        for i in 0..nodes {
            let records = &world.protocol(NodeId(i)).zone_deliveries;
            for rec in records.iter().skip(seen[i]) {
                let recipients: RecipientSet = match &rec.holders {
                    Some(hs) => hs
                        .iter()
                        .filter_map(|p| world.pseudonym_owner(*p))
                        .collect(),
                    None => world
                        .nodes_within(world.position(NodeId(i)), range)
                        .into_iter()
                        .collect(),
                };
                if !recipients.is_empty() {
                    attack.observe(&recipients);
                }
            }
            seen[i] = records.len();
        }
    }
    world.run();

    let m = world.metrics();
    let cap = capture.lock();

    println!("== Traffic (what the attacker captured) ==");
    println!("  data transmissions : {}", cap.data_transmissions());
    println!("  cover packets      : {}", m.cover_frames);
    println!("  delivery rate      : {:.3}", m.delivery_rate());

    println!("\n== Source anonymity (Section 2.6) ==");
    // The attacker sees the notify-and-go burst: every notified neighbor
    // transmits, so the source hides among eta + 1 transmitters.
    let eta = m.cover_frames as f64 / m.packets_sent().max(1) as f64;
    let candidates: Vec<NodeId> = (0..=eta as usize).map(NodeId).collect();
    let belief = uniform_belief(&candidates);
    println!(
        "  cover transmitters per send : {eta:.1} (eta-anonymity, entropy {:.1} bits)",
        belief_entropy(&belief)
    );

    println!("\n== Timing attack (Section 3.2) ==");
    let sends = cap.send_times_of(src);
    let recvs = cap.delivery_times_of(dst);
    match correlate(&sends, &recvs, 0.003) {
        Some(c) => println!(
            "  lag lock {:.0} ms +/- IQR {:.0} ms, confidence {:.0}% over {} sends",
            c.lag_s * 1000.0,
            c.lag_iqr_s * 1000.0,
            c.score * 100.0,
            c.samples
        ),
        None => println!("  attacker could not lock a lag"),
    }

    println!("\n== Intersection attack (Section 3.3) ==");
    println!("  observation rounds : {}", attack.rounds());
    println!(
        "  candidate set      : {:?} nodes",
        attack.anonymity_degree()
    );
    println!("  history            : {:?}", attack.history);
    if attack.identified(dst) {
        println!("  VERDICT: destination IDENTIFIED — anonymity broken");
    } else if attack.destination_excluded(dst) {
        println!("  VERDICT: destination EXCLUDED from the intersection — attack foiled for good");
    } else {
        println!("  VERDICT: destination still hidden among the candidates");
    }
}

//! Battlefield scenario — the paper's motivating application (Section 1):
//! squads moving in formation (group mobility), a forward observer
//! reporting to a commander, and an enemy running traffic analysis.
//!
//! The example runs the same mission twice — once over plain GPSR, once
//! over ALERT — and prints what the eavesdropping enemy could conclude in
//! each case.
//!
//! ```text
//! cargo run --release --example battlefield
//! ```

use alert::adversary::{correlate, mean_route_diversity, spatial_spread, TrafficLog};
use alert::prelude::*;
use alert::sim::PacketId;

/// Mission parameters: 8 dispersed squads (about 20 soldiers each)
/// patrolling 1 km^2 with enough spread to stay radio-connected.
fn mission() -> ScenarioConfig {
    let mut cfg = ScenarioConfig::default()
        .with_nodes(160)
        .with_duration(80.0)
        .with_mobility(MobilityKind::Group {
            groups: 8,
            range: 250.0,
        });
    cfg.speed = 1.5; // patrol pace
    cfg.traffic.pairs = 3; // observer -> commander channels
    cfg
}

struct Debrief {
    delivery: f64,
    latency_ms: f64,
    route_diversity: f64,
    spatial_spread_m: f64,
    timing_score: f64,
}

fn analyze(
    metrics: &Metrics,
    capture: &alert::adversary::TrafficCapture,
    sessions: &[alert::sim::Session],
) -> Debrief {
    // Route diversity across each channel's delivered packets.
    let mut diversity = 0.0;
    let mut timing = 0.0;
    let mut timing_n = 0.0;
    for (s_idx, s) in sessions.iter().enumerate() {
        let routes: Vec<Vec<NodeId>> = metrics
            .packets
            .iter()
            .filter(|p| p.session == SessionId(s_idx as u32) && p.delivered_at.is_some())
            .map(|p| p.participants.clone())
            .collect();
        diversity += mean_route_diversity(&routes);
        let sends = capture.send_times_of(s.src);
        let recvs = capture.delivery_times_of(s.dst);
        if let Some(c) = correlate(&sends, &recvs, 0.003) {
            timing += c.score;
            timing_n += 1.0;
        }
    }
    diversity /= sessions.len() as f64;
    let timing_score = if timing_n > 0.0 {
        timing / timing_n
    } else {
        0.0
    };

    // Spatial footprint of the data traffic the enemy can observe.
    let positions: Vec<Point> = (0..metrics.packets.len() as u64)
        .flat_map(|id| capture.route_of(PacketId(id)))
        .map(|(_, p)| p)
        .collect();

    Debrief {
        delivery: metrics.delivery_rate(),
        latency_ms: metrics.mean_latency().unwrap_or(f64::NAN) * 1000.0,
        route_diversity: diversity,
        spatial_spread_m: spatial_spread(&positions),
        timing_score,
    }
}

fn print_debrief(name: &str, d: &Debrief) {
    println!("--- {name} ---");
    println!("  delivery rate           : {:.3}", d.delivery);
    println!("  mean latency            : {:.1} ms", d.latency_ms);
    println!("  route diversity (0..1)  : {:.2}", d.route_diversity);
    println!("  traffic spatial spread  : {:.0} m", d.spatial_spread_m);
    println!(
        "  enemy timing-attack lock: {:.0}% of packets",
        d.timing_score * 100.0
    );
}

fn main() {
    println!("Battlefield: 8 squads, observer->commander channels, passive enemy\n");

    // Mission over GPSR: efficient but observable.
    let (log, capture) = TrafficLog::new();
    let mut gpsr_world = World::new(mission(), 1337, |_, _| Gpsr::default());
    gpsr_world.add_observer(Box::new(log));
    gpsr_world.run();
    let gpsr = analyze(gpsr_world.metrics(), &capture.lock(), gpsr_world.sessions());

    // Same mission over ALERT.
    let (log, capture) = TrafficLog::new();
    let mut alert_world = World::new(mission(), 1337, |_, _| Alert::new(AlertConfig::default()));
    alert_world.add_observer(Box::new(log));
    alert_world.run();
    let alert = analyze(
        alert_world.metrics(),
        &capture.lock(),
        alert_world.sessions(),
    );

    print_debrief("GPSR (plain geographic routing)", &gpsr);
    println!();
    print_debrief("ALERT (anonymous routing)", &alert);

    println!();
    println!("Verdict:");
    if alert.route_diversity > gpsr.route_diversity && alert.timing_score < gpsr.timing_score {
        println!(
            "  ALERT hides the channels: {:.0}x more route diversity, timing lock {:.0}% -> {:.0}%,",
            (alert.route_diversity / gpsr.route_diversity.max(0.01)).max(1.0),
            gpsr.timing_score * 100.0,
            alert.timing_score * 100.0,
        );
        println!(
            "  at a latency cost of {:.1} ms per packet.",
            alert.latency_ms - gpsr.latency_ms
        );
    } else {
        println!("  unexpected: ALERT did not improve anonymity on this seed");
    }
}

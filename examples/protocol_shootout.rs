//! Protocol shootout: the paper's four protocols on one scenario, side by
//! side — the condensed version of Section 5.6.
//!
//! ```text
//! cargo run --release --example protocol_shootout [-- <nodes> <speed>]
//! ```

use alert::prelude::*;

struct Row {
    name: &'static str,
    delivery: f64,
    latency_ms: f64,
    hops: f64,
    participants: f64,
    pk_ops: u64,
    sym_ops: u64,
}

fn row(name: &'static str, m: &Metrics) -> Row {
    Row {
        name,
        delivery: m.delivery_rate(),
        latency_ms: m.mean_latency().unwrap_or(f64::NAN) * 1000.0,
        hops: m.hops_per_packet(),
        participants: m
            .mean_cumulative_participants()
            .last()
            .copied()
            .unwrap_or(0.0),
        pk_ops: m.crypto.pk_encrypt + m.crypto.pk_decrypt + m.crypto.pk_verify,
        sym_ops: m.crypto.symmetric,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let nodes: usize = args.first().and_then(|a| a.parse().ok()).unwrap_or(200);
    let speed: f64 = args.get(1).and_then(|a| a.parse().ok()).unwrap_or(2.0);
    let scenario = ScenarioConfig::default()
        .with_nodes(nodes)
        .with_speed(speed);
    println!(
        "Shootout: {nodes} nodes at {speed} m/s, {} s, seed 7\n",
        scenario.duration_s
    );

    let mut rows = Vec::new();
    {
        let mut w = World::new(scenario.clone(), 7, |_, _| {
            Alert::new(AlertConfig::default())
        });
        w.run();
        rows.push(row("ALERT", w.metrics()));
    }
    {
        let mut w = World::new(scenario.clone(), 7, |_, _| Gpsr::default());
        w.run();
        rows.push(row("GPSR", w.metrics()));
    }
    {
        let mut w = World::new(scenario.clone(), 7, |_, _| Alarm::default());
        w.run();
        rows.push(row("ALARM", w.metrics()));
    }
    {
        let mut w = World::new(scenario, 7, |_, _| Ao2p::default());
        w.run();
        rows.push(row("AO2P", w.metrics()));
    }

    println!(
        "{:<7} {:>9} {:>12} {:>7} {:>13} {:>9} {:>9}",
        "proto", "delivery", "latency(ms)", "hops", "participants", "pk ops", "sym ops"
    );
    for r in &rows {
        println!(
            "{:<7} {:>9.3} {:>12.1} {:>7.2} {:>13.1} {:>9} {:>9}",
            r.name, r.delivery, r.latency_ms, r.hops, r.participants, r.pk_ops, r.sym_ops
        );
    }

    println!("\nReading the table like the paper does:");
    println!(
        " - participants: ALERT recruits many more distinct relays => route anonymity (Fig. 10)"
    );
    println!(" - latency: hop-by-hop public-key protocols pay 100s of ms (Fig. 14)");
    println!(" - hops: ALERT pays a few extra hops for its random forwarders (Fig. 15)");
    println!(" - crypto: ALERT is symmetric per packet, public-key only per session (Section 2.5)");
}

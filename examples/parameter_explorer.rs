//! Parameter explorer: sweep ALERT's anonymity knob `k` and print the
//! anonymity-vs-cost tradeoff the paper analyzes in Sections 4.1–4.2
//! ("it is important to discover an optimal tradeoff point for H and k").
//!
//! ```text
//! cargo run --release --example parameter_explorer [-- <runs>]
//! ```

use alert::prelude::*;
use alert_bench::{sweep_point, ProtocolChoice};

fn main() {
    let runs: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(5);
    let cfg = ScenarioConfig::default();
    let density = cfg.density();
    let area = cfg.field().area();

    println!("ALERT k-sweep on the paper's default scenario ({runs} runs per point)\n");
    println!(
        "{:>6} {:>3} {:>10} {:>9} {:>12} {:>12} {:>10}",
        "k", "H", "zone pop", "RFs/pkt", "latency(ms)", "hops/pkt", "delivery"
    );
    for k in [2.0f64, 4.0, 6.25, 12.5, 25.0, 50.0] {
        let acfg = AlertConfig::default().with_k(k);
        let h = acfg.partitions(density, area);
        let zone_pop = density * area / 2f64.powi(h as i32);
        let proto = ProtocolChoice::Alert(acfg);
        let rf = sweep_point(proto, &cfg, runs, Metrics::mean_random_forwarders);
        let lat = sweep_point(proto, &cfg, runs, |m: &Metrics| {
            m.mean_latency().unwrap_or(f64::NAN) * 1000.0
        });
        let hops = sweep_point(proto, &cfg, runs, Metrics::hops_per_packet);
        let del = sweep_point(proto, &cfg, runs, Metrics::delivery_rate);
        println!(
            "{:>6.2} {:>3} {:>10.1} {:>9.2} {:>12.1} {:>12.2} {:>10.3}",
            k, h, zone_pop, rf.mean, lat.mean, hops.mean, del.mean
        );
    }
    println!();
    println!("Reading the tradeoff (paper §4.1-4.2):");
    println!(" - small k  => many partitions H => more random forwarders (route anonymity)");
    println!("   but a tiny destination zone (weak k-anonymity) and longer paths;");
    println!(" - large k  => few partitions => strong destination anonymity, cheap routes,");
    println!("   but few RFs to hide the route. The paper picks k ~ 6 (H = 5) as the knee.");

    // The theory side of the same curve, for comparison.
    println!("\nAnalytical E[RFs] (Eq. 10): ");
    for h in 1..=8u32 {
        print!(
            "  H={h}: {:.2}",
            alert::analysis::expected_random_forwarders(h)
        );
    }
    println!();
}

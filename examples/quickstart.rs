//! Quickstart: run ALERT on the paper's default scenario and print the
//! evaluation metrics.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use alert::prelude::*;

fn main() {
    // The paper's Section 5.2 setup: 1,000 m x 1,000 m, 200 nodes moving
    // at 2 m/s (random waypoint), 250 m radio range, 10 S-D pairs sending
    // a 512-byte packet every 2 s for 100 s.
    let scenario = ScenarioConfig::default();
    println!(
        "scenario: {} nodes on {:.0} m x {:.0} m, {} S-D pairs, {:.0} s",
        scenario.nodes,
        scenario.field_w,
        scenario.field_h,
        scenario.traffic.pairs,
        scenario.duration_s
    );

    // ALERT with the paper's parameters: k = 6.25 so that H = 5.
    let config = AlertConfig::default();
    let h = config.partitions(scenario.density(), scenario.field().area());
    println!("ALERT: k = {}, H = {h} partitions\n", config.k);

    let mut world = World::new(scenario, 42, move |_, _| Alert::new(config));
    world.run();

    let m = world.metrics();
    println!("packets sent           : {}", m.packets_sent());
    println!("delivery rate          : {:.3}", m.delivery_rate());
    println!(
        "mean latency           : {:.1} ms",
        m.mean_latency().unwrap_or(f64::NAN) * 1000.0
    );
    println!("hops per packet        : {:.2}", m.hops_per_packet());
    println!("random forwarders/pkt  : {:.2}", m.mean_random_forwarders());
    println!("cover packets (n&g)    : {}", m.cover_frames);
    println!(
        "crypto ops             : {} symmetric, {} pk (per-session handshakes)",
        m.crypto.symmetric,
        m.crypto.pk_encrypt + m.crypto.pk_decrypt
    );

    // The route-anonymity headline: how many distinct nodes ended up
    // carrying traffic for each S-D pair (Fig. 10).
    let curve = m.mean_cumulative_participants();
    if let (Some(first), Some(last)) = (curve.first(), curve.last()) {
        println!(
            "participating nodes    : {first:.1} after 1 packet -> {last:.1} after {} packets",
            curve.len()
        );
    }
}

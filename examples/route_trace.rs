//! Route trace: render the actual paths three consecutive packets take
//! from one source to one destination, under GPSR and under ALERT, as
//! ASCII maps — the visual version of the paper's Fig. 2.
//!
//! ```text
//! cargo run --release --example route_trace [-- <seed>]
//! ```

use alert::adversary::TrafficLog;
use alert::geom::{destination_zone, Axis};
use alert::prelude::*;
use alert::sim::PacketId;

const COLS: usize = 60;
const ROWS: usize = 24;

fn scenario() -> ScenarioConfig {
    let mut cfg = ScenarioConfig::default()
        .with_nodes(200)
        .with_duration(8.0)
        .with_mobility(MobilityKind::Static); // a still map is readable
    cfg.traffic.pairs = 1;
    cfg
}

struct Canvas {
    cells: Vec<Vec<char>>,
}

impl Canvas {
    fn new() -> Self {
        Canvas {
            cells: vec![vec![' '; COLS]; ROWS],
        }
    }

    fn cell(&mut self, p: Point) -> &mut char {
        let c = ((p.x / 1000.0) * (COLS as f64 - 1.0)).round() as usize;
        let r = ((1.0 - p.y / 1000.0) * (ROWS as f64 - 1.0)).round() as usize;
        &mut self.cells[r.min(ROWS - 1)][c.min(COLS - 1)]
    }

    fn draw(&mut self, p: Point, ch: char) {
        let cell = self.cell(p);
        // Never overdraw the endpoints.
        if *cell != 'S' && *cell != 'D' {
            *cell = ch;
        }
    }

    fn draw_zone(&mut self, zone: &Rect) {
        let steps = 40;
        for i in 0..=steps {
            let t = i as f64 / steps as f64;
            let top = Point::new(zone.min.x + zone.width() * t, zone.max.y);
            let bottom = Point::new(zone.min.x + zone.width() * t, zone.min.y);
            let left = Point::new(zone.min.x, zone.min.y + zone.height() * t);
            let right = Point::new(zone.max.x, zone.min.y + zone.height() * t);
            for p in [top, bottom, left, right] {
                let cell = self.cell(p);
                if *cell == ' ' || *cell == '.' {
                    *cell = '#';
                }
            }
        }
    }

    fn render(&self) -> String {
        let mut out = String::new();
        out.push('+');
        out.push_str(&"-".repeat(COLS));
        out.push_str("+\n");
        for row in &self.cells {
            out.push('|');
            out.extend(row.iter());
            out.push_str("|\n");
        }
        out.push('+');
        out.push_str(&"-".repeat(COLS));
        out.push_str("+\n");
        out
    }
}

/// Runs one protocol and renders the routes of its first three packets.
fn trace<P, F>(title: &str, seed: u64, zone: Option<Rect>, factory: F) -> String
where
    P: alert::sim::ProtocolNode,
    F: FnMut(NodeId, &ScenarioConfig) -> P,
{
    let (log, capture) = TrafficLog::new();
    let mut world = World::new(scenario(), seed, factory);
    world.add_observer(Box::new(log));
    let s = world.sessions()[0];
    let (src_pos, dst_pos) = (world.position(s.src), world.position(s.dst));
    world.run();

    let mut canvas = Canvas::new();
    // Background: every node as a dot.
    for i in 0..200 {
        canvas.draw(world.position(NodeId(i)), '.');
    }
    if let Some(z) = zone {
        canvas.draw_zone(&z);
    }
    // Routes of packets 0..3, numbered by packet.
    let cap = capture.lock();
    for pkt in 0..3u64 {
        let glyph = char::from_digit(pkt as u32 + 1, 10).unwrap();
        for (_, pos) in cap.route_of(PacketId(pkt)) {
            canvas.draw(pos, glyph);
        }
    }
    *canvas.cell(src_pos) = 'S';
    *canvas.cell(dst_pos) = 'D';

    let m = world.metrics();
    format!(
        "{title}\n{}hops/packet {:.1}, routes of packets 1-3 drawn as '1','2','3'\n",
        canvas.render(),
        m.hops_per_packet()
    )
}

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(17);

    // Derive the destination zone ALERT will use (H = 5 around D).
    let probe: World<Gpsr> = World::new(scenario(), seed, |_, _| Gpsr::default());
    let d_pos = probe.position(probe.sessions()[0].dst);
    let zd = destination_zone(&Rect::with_size(1000.0, 1000.0), d_pos, 5, Axis::Vertical);
    drop(probe);

    println!("Field 1000 m x 1000 m, 200 static nodes ('.'), S -> D, seed {seed}");
    println!("'#' outlines ALERT's destination zone Z_D (k-anonymity region)\n");
    print!(
        "{}",
        trace(
            "== GPSR: every packet takes the same shortest path ==",
            seed,
            None,
            |_, _| Gpsr::default()
        )
    );
    println!();
    print!(
        "{}",
        trace(
            "== ALERT: every packet takes a fresh random-forwarder route ==",
            seed,
            Some(zd),
            |_, _| Alert::new(AlertConfig::default()),
        )
    );
}

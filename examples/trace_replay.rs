//! Trace replay: load a JSONL trace produced by `simrun --trace` (or
//! generate one in-process) and print each packet's reconstructed
//! journey — hop path, random forwarders, zone partitions, fate.
//!
//! ```text
//! cargo run --release --example trace_replay [-- trace.jsonl]
//! ```
//!
//! With no argument, the example runs ALERT on a small scenario itself
//! and replays the trace it just captured.

use alert::core::{Alert, AlertConfig};
use alert::prelude::*;
use alert::sim::{JsonlSink, SharedBuf};
use alert::trace::{parse_trace, reconstruct_packets, trace_stats, PacketTrace};

fn capture_demo_trace() -> String {
    let mut cfg = ScenarioConfig::default()
        .with_nodes(100)
        .with_duration(15.0);
    cfg.traffic.pairs = 3;
    let buf = SharedBuf::new();
    let mut world = World::new(cfg, 29, |_, _| Alert::new(AlertConfig::default()));
    world.set_trace_sink(Box::new(JsonlSink::new(buf.clone())));
    world.run();
    world.take_trace_sink();
    buf.contents()
}

fn fate(p: &PacketTrace) -> String {
    match (p.delivered_at, p.drops.first()) {
        (Some(t), _) => format!("delivered @ {t:.3}s"),
        (None, Some(reason)) => format!("dropped ({reason})"),
        (None, None) => "in flight at sim end".into(),
    }
}

fn path(p: &PacketTrace) -> String {
    let mut out: Vec<String> = p.participants.iter().map(|n| n.to_string()).collect();
    if let Some(dst) = p.dst {
        if p.delivered_at.is_some() && p.participants.last() != Some(&dst) {
            out.push(format!("[{dst}]"));
        }
    }
    out.join(" > ")
}

fn main() {
    let text = match std::env::args().nth(1) {
        Some(path) => std::fs::read_to_string(&path).unwrap_or_else(|e| {
            eprintln!("error: cannot read {path}: {e}");
            std::process::exit(2);
        }),
        None => {
            println!("(no trace file given; capturing a fresh ALERT trace in-process)\n");
            capture_demo_trace()
        }
    };

    let events = parse_trace(&text).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(2);
    });
    let stats = trace_stats(&events);
    println!(
        "{} events | {} packets, {} delivered | {} tx, {} rx | {} timer fires",
        events.len(),
        stats.app_packets,
        stats.delivered_packets,
        stats.tx_frames,
        stats.rx_frames,
        stats.timer_fires,
    );
    if !stats.drops_by_reason.is_empty() {
        println!("drops: {:?}", stats.drops_by_reason);
    }
    println!();

    let packets = reconstruct_packets(&events);
    println!(
        "{:>4} {:>8} {:>9} {:>5} {:>4} {:>6}  {}",
        "pkt", "sent", "fate", "hops", "RFs", "splits", "hop path (node ids, [dst] = receive-only)"
    );
    for (id, p) in &packets {
        println!(
            "{:>4} {:>8} {:>9} {:>5} {:>4} {:>6}  {}",
            id,
            p.sent_at.map_or("-".into(), |t| format!("{t:.3}s")),
            fate(p),
            p.hops,
            p.random_forwarders,
            p.zone_partitions,
            path(p),
        );
    }
}

//! Renders the actual routes of consecutive packets under GPSR and ALERT
//! to SVG files — the publication-quality version of `route_trace`.
//!
//! ```text
//! cargo run --release --example route_svg [-- <seed> <out-dir>]
//! ```

use alert::adversary::TrafficLog;
use alert::geom::{destination_zone, Axis};
use alert::prelude::*;
use alert::sim::PacketId;
use alert::viz::SvgScene;

fn scenario() -> ScenarioConfig {
    let mut cfg = ScenarioConfig::default()
        .with_nodes(200)
        .with_duration(8.0)
        .with_mobility(MobilityKind::Static);
    cfg.traffic.pairs = 1;
    cfg
}

const ROUTE_COLORS: [&str; 3] = ["#c0392b", "#2471a3", "#1e8449"];

fn draw<P, F>(title: &str, seed: u64, zone: Option<Rect>, factory: F) -> String
where
    P: alert::sim::ProtocolNode,
    F: FnMut(NodeId, &ScenarioConfig) -> P,
{
    let (log, capture) = TrafficLog::new();
    let mut world = World::new(scenario(), seed, factory);
    world.add_observer(Box::new(log));
    let s = world.sessions()[0];
    let (src, dst) = (world.position(s.src), world.position(s.dst));
    world.run();

    let field = Rect::with_size(1000.0, 1000.0);
    let mut scene = SvgScene::new(field, 900.0);
    let positions: Vec<Point> = (0..200).map(|i| world.position(NodeId(i))).collect();
    scene.nodes(&positions, "#bbb");
    if let Some(z) = zone {
        scene.zone(&z, "#7d3c98");
    }
    let cap = capture.lock();
    for pkt in 0..3u64 {
        let hops: Vec<Point> = cap
            .route_of(PacketId(pkt))
            .into_iter()
            .map(|(_, p)| p)
            .collect();
        scene.route(&hops, ROUTE_COLORS[pkt as usize]);
    }
    scene.marker(src, "S", "#111");
    scene.marker(dst, "D", "#111");
    scene.caption(title);
    scene.render()
}

fn main() {
    let mut args = std::env::args().skip(1);
    let seed: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(17);
    let out_dir = args.next().unwrap_or_else(|| "target/route_svg".into());
    std::fs::create_dir_all(&out_dir).expect("create output dir");

    let probe: World<Gpsr> = World::new(scenario(), seed, |_, _| Gpsr::default());
    let d_pos = probe.position(probe.sessions()[0].dst);
    let zd = destination_zone(&Rect::with_size(1000.0, 1000.0), d_pos, 5, Axis::Vertical);
    drop(probe);

    let gpsr = draw(
        "GPSR: three packets, one shortest path",
        seed,
        None,
        |_, _| Gpsr::default(),
    );
    let alert = draw(
        "ALERT: three packets, three random-forwarder routes",
        seed,
        Some(zd),
        |_, _| Alert::new(AlertConfig::default()),
    );
    let gpsr_path = format!("{out_dir}/gpsr_routes.svg");
    let alert_path = format!("{out_dir}/alert_routes.svg");
    std::fs::write(&gpsr_path, gpsr).expect("write gpsr svg");
    std::fs::write(&alert_path, alert).expect("write alert svg");
    println!("wrote {gpsr_path}");
    println!("wrote {alert_path}");
}
